"""Sound pressure level algebra.

SPL is a ratio of a measured RMS pressure to a *reference* pressure, and
the reference differs between media: 20 uPa in air, 1 uPa in water.  The
paper's Section 2.2 uses exactly this to convert in-air attack levels to
their underwater equivalents:

    SPL_water = SPL_air + 20 * log10(20 uPa / 1 uPa) = SPL_air + 26 dB

so the 140 dB (re 1 uPa) underwater source used in the case study carries
the same pressure as a ~114 dB SPL source in air — comparable to the
Blue Note in-air attack levels.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import UnitError
from repro.units import P_REF_AIR, P_REF_WATER

__all__ = [
    "pressure_to_spl",
    "spl_to_pressure",
    "spl_air_to_water",
    "spl_water_to_air",
    "spl_sum",
    "AIR_WATER_REFERENCE_SHIFT_DB",
]

#: 20*log10(20 uPa / 1 uPa): the reference shift between air and water SPL.
AIR_WATER_REFERENCE_SHIFT_DB = 20.0 * math.log10(P_REF_AIR / P_REF_WATER)


def pressure_to_spl(pressure_pa: float, reference_pa: float = P_REF_WATER) -> float:
    """Convert an RMS pressure in Pa to SPL in dB re ``reference_pa``.

    >>> pressure_to_spl(1e-6)  # the underwater reference itself
    0.0
    >>> round(pressure_to_spl(1.0), 1)  # 1 Pa RMS underwater
    120.0
    """
    if not (pressure_pa > 0.0):  # rejects NaN as well as <= 0
        raise UnitError(f"pressure must be positive: {pressure_pa}")
    if not (reference_pa > 0.0):
        raise UnitError(f"reference pressure must be positive: {reference_pa}")
    return 20.0 * math.log10(pressure_pa / reference_pa)


def spl_to_pressure(spl_db: float, reference_pa: float = P_REF_WATER) -> float:
    """Convert SPL in dB re ``reference_pa`` to RMS pressure in Pa.

    >>> round(spl_to_pressure(120.0), 9)  # 120 dB re 1 uPa is 1 Pa
    1.0
    >>> round(spl_to_pressure(140.0), 6)  # the paper's attack level
    10.0
    """
    if not (reference_pa > 0.0):  # rejects NaN as well as <= 0
        raise UnitError(f"reference pressure must be positive: {reference_pa}")
    return reference_pa * 10.0 ** (spl_db / 20.0)


def spl_air_to_water(spl_air_db: float) -> float:
    """Re-reference an in-air SPL (re 20 uPa) to underwater SPL (re 1 uPa).

    The physical pressure is unchanged; only the reference moves, adding
    approximately 26 dB (the paper's Section 2.2 conversion).

    >>> round(spl_air_to_water(114.0))  # ~the Blue Note in-air level
    140
    """
    return spl_air_db + AIR_WATER_REFERENCE_SHIFT_DB


def spl_water_to_air(spl_water_db: float) -> float:
    """Re-reference an underwater SPL (re 1 uPa) to in-air SPL (re 20 uPa).

    >>> round(spl_water_to_air(140.0))
    114
    """
    return spl_water_db - AIR_WATER_REFERENCE_SHIFT_DB


def spl_sum(levels_db: Iterable[float]) -> float:
    """Energetically sum incoherent sources given in dB (same reference).

    Two equal sources sum to +3 dB; an empty iterable is rejected because
    "no sound" has no finite level.  Sources at ``-inf`` dB contribute
    zero power, so a set of only silent sources sums to ``-inf`` rather
    than tripping a ``log10(0)`` domain error.

    >>> round(spl_sum([100.0, 100.0]), 2)
    103.01
    >>> spl_sum([140.0])
    140.0
    >>> spl_sum([float("-inf"), float("-inf")])
    -inf
    """
    total_power = 0.0
    count = 0
    for level in levels_db:
        total_power += 10.0 ** (level / 10.0)
        count += 1
    if count == 0:
        raise UnitError("cannot sum an empty set of levels")
    if total_power == 0.0:
        return -math.inf
    return 10.0 * math.log10(total_power)
