"""Spectral analysis of sampled signals.

The hydrophone side of the detector needs to find the attacker's tone
in a sampled pressure waveform.  This module wraps numpy's FFT into the
few operations the reproduction needs: amplitude spectra, dominant-tone
estimation (with parabolic interpolation between bins), and band SPL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import UnitError
from repro.units import P_REF_WATER

__all__ = ["Spectrum", "analyze", "dominant_tone"]


@dataclass(frozen=True)
class Spectrum:
    """One-sided amplitude spectrum of a real signal."""

    frequencies_hz: np.ndarray
    amplitudes: np.ndarray  # peak amplitude per bin, same units as input
    sample_rate_hz: float

    def band_rms(self, low_hz: float, high_hz: float) -> float:
        """RMS amplitude of the signal restricted to [low, high] Hz."""
        if not 0.0 <= low_hz < high_hz:
            raise UnitError("need 0 <= low < high")
        mask = (self.frequencies_hz >= low_hz) & (self.frequencies_hz <= high_hz)
        # Parseval over the band, corrected by the Hann window's noise
        # bandwidth (1.5 bins) so a pure tone's main lobe is not
        # double-counted.
        energy = np.sum((self.amplitudes[mask] / math.sqrt(2.0)) ** 2) / 1.5
        return float(np.sqrt(energy))

    def band_spl_db(self, low_hz: float, high_hz: float) -> float:
        """Band SPL (dB re 1 uPa) assuming the input was pascals."""
        rms = self.band_rms(low_hz, high_hz)
        if rms <= 0.0:
            return -math.inf
        return 20.0 * math.log10(rms / P_REF_WATER)


def analyze(samples: np.ndarray, sample_rate_hz: float) -> Spectrum:
    """Hann-windowed one-sided amplitude spectrum of ``samples``."""
    if sample_rate_hz <= 0.0:
        raise UnitError(f"sample rate must be positive: {sample_rate_hz}")
    data = np.asarray(samples, dtype=np.float64)
    if data.size < 8:
        raise UnitError("need at least 8 samples")
    window = np.hanning(data.size)
    # Coherent gain of the Hann window is 0.5: divide it back out.
    spectrum = np.fft.rfft(data * window)
    amplitudes = np.abs(spectrum) * 2.0 / (data.size * 0.5)
    frequencies = np.fft.rfftfreq(data.size, d=1.0 / sample_rate_hz)
    return Spectrum(frequencies, amplitudes, sample_rate_hz)


def dominant_tone(
    samples: np.ndarray, sample_rate_hz: float, min_frequency_hz: float = 20.0
) -> Tuple[float, float]:
    """(frequency, amplitude) of the strongest tone above a floor.

    Uses parabolic interpolation across the peak bin for sub-bin
    frequency accuracy (a few tenths of a percent for clean tones).
    """
    spectrum = analyze(samples, sample_rate_hz)
    mask = spectrum.frequencies_hz >= min_frequency_hz
    if not np.any(mask):
        raise UnitError("no bins above the minimum frequency")
    offset = int(np.argmax(mask))
    peak = offset + int(np.argmax(spectrum.amplitudes[mask]))
    amplitude = float(spectrum.amplitudes[peak])
    frequency = float(spectrum.frequencies_hz[peak])
    # Parabolic interpolation on log amplitudes of the three-point peak.
    if 0 < peak < spectrum.amplitudes.size - 1:
        left, mid, right = (
            spectrum.amplitudes[peak - 1],
            spectrum.amplitudes[peak],
            spectrum.amplitudes[peak + 1],
        )
        if left > 0 and mid > 0 and right > 0:
            la, ma, ra = math.log(left), math.log(mid), math.log(right)
            denom = la - 2.0 * ma + ra
            if abs(denom) > 1e-12:
                delta = 0.5 * (la - ra) / denom
                bin_width = spectrum.frequencies_hz[1] - spectrum.frequencies_hz[0]
                frequency += float(delta) * float(bin_width)
    return frequency, amplitude
