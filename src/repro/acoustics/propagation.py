"""Acoustic propagation loss models.

Two models are provided:

* :class:`PropagationModel` — open-water propagation: spherical
  spreading plus frequency-dependent absorption.  Used for the paper's
  Section 5 discussion of long-range attacks (e.g. a 500 Hz tone losing
  only 0.038 dB/km in the Baltic, so range is spreading-limited).
* :class:`TankModel` — the laboratory tank of the case study: spreading
  from the speaker face with a small reverberation floor from tank-wall
  reflections.  Over the 1-25 cm distances of Tables 1-2, absorption is
  negligible and spreading dominates, which is what produces the sharp
  distance cliff.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import UnitError
from repro.units import KM

from .absorption import absorption_for_conditions
from .medium import Medium, WaterConditions

__all__ = ["spherical_spreading_db", "PropagationModel", "TankModel"]


def spherical_spreading_db(distance_m: float, reference_m: float = 1.0) -> float:
    """Spreading loss in dB from ``reference_m`` out to ``distance_m``.

    Distances inside the reference sphere are clamped to zero loss: the
    source level is already defined there.
    """
    if not (distance_m > 0.0):  # rejects NaN as well as <= 0
        raise UnitError(f"distance must be positive: {distance_m}")
    if not (reference_m > 0.0):
        raise UnitError(f"reference distance must be positive: {reference_m}")
    if distance_m <= reference_m:
        return 0.0
    return 20.0 * math.log10(distance_m / reference_m)


@dataclass
class PropagationModel:
    """Open-water transmission loss: spreading + absorption.

    ``TL(r, f) = 20 log10(r / r0) + alpha(f) * r``
    """

    conditions: WaterConditions = field(default_factory=WaterConditions.tank)
    reference_m: float = 0.01

    @property
    def medium(self) -> Medium:
        """The water medium implied by the conditions."""
        return Medium.water(self.conditions)

    def absorption_db_per_km(self, frequency_hz: float) -> float:
        """Absorption coefficient at ``frequency_hz`` for these conditions."""
        return absorption_for_conditions(frequency_hz, self.conditions)

    def transmission_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        """Total one-way transmission loss in dB at ``distance_m``."""
        spreading = spherical_spreading_db(distance_m, self.reference_m)
        absorption = self.absorption_db_per_km(frequency_hz) * (distance_m / KM)
        return spreading + absorption

    def received_level_db(
        self, source_level_db: float, distance_m: float, frequency_hz: float
    ) -> float:
        """Received SPL (dB re 1 uPa) at ``distance_m`` from the source."""
        if math.isinf(source_level_db) and source_level_db < 0:
            return -math.inf
        return source_level_db - self.transmission_loss_db(distance_m, frequency_hz)

    def max_range_for_level(
        self,
        source_level_db: float,
        required_level_db: float,
        frequency_hz: float,
        max_search_m: float = 100_000.0,
    ) -> float:
        """Largest distance at which the received level stays above a floor.

        Solved by bisection on the monotone transmission loss; returns
        ``max_search_m`` if the level is still sufficient there, and 0.0
        if it is insufficient even at the reference distance.
        """
        if self.received_level_db(source_level_db, self.reference_m, frequency_hz) < required_level_db:
            return 0.0
        if self.received_level_db(source_level_db, max_search_m, frequency_hz) >= required_level_db:
            return max_search_m
        low, high = self.reference_m, max_search_m
        for _ in range(200):
            mid = math.sqrt(low * high)  # geometric bisection suits log-scale loss
            if self.received_level_db(source_level_db, mid, frequency_hz) >= required_level_db:
                low = mid
            else:
                high = mid
        return low


@dataclass
class TankModel(PropagationModel):
    """The case-study water tank.

    A small tank is a reverberant space: wall reflections add an
    incoherent floor ``reverberation_floor_db`` below the source level.
    The direct path still dominates at the centimetre distances used in
    the paper, so the floor mostly matters for sanity checks (received
    level never drops unboundedly inside the tank).
    """

    reverberation_floor_db: float = 55.0
    tank_length_m: float = 1.2

    def received_level_db(
        self, source_level_db: float, distance_m: float, frequency_hz: float
    ) -> float:
        if math.isinf(source_level_db) and source_level_db < 0:
            return -math.inf
        if distance_m > self.tank_length_m:
            raise UnitError(
                f"distance {distance_m} m exceeds tank length {self.tank_length_m} m"
            )
        direct = super().received_level_db(source_level_db, distance_m, frequency_hz)
        floor = source_level_db - self.reverberation_floor_db
        # Incoherent sum of the direct path and the reverberant field.
        return 10.0 * math.log10(10.0 ** (direct / 10.0) + 10.0 ** (floor / 10.0))
