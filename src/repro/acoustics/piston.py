"""Baffled circular-piston radiation: the speaker's true field.

The propagation model treats the source as a point with spherical
spreading from a reference distance.  A real transducer like the AQ339
is closer to a baffled circular piston, whose field differs in two ways
that matter to close-range attacks:

* **near field** — inside the Rayleigh distance ``z_r = a^2 / lambda``
  the on-axis pressure oscillates instead of falling as 1/r (the paper
  operates at 1-25 cm with an ~20 cm transducer: solidly near-field);
* **directivity** — off-axis response falls as ``2 J1(x) / x`` with
  ``x = k a sin(theta)``, so a large piston at high frequency beams.

Implemented exactly (scipy's Bessel J1), with helpers the coupling
ablations use to sanity-check the point-source approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import j1

from repro.errors import UnitError

__all__ = ["CircularPiston"]


@dataclass(frozen=True)
class CircularPiston:
    """A baffled circular piston source.

    Attributes:
        radius_m: piston radius (the AQ339 disc is ~0.1 m).
        sound_speed: medium sound speed, m/s.
    """

    radius_m: float = 0.10
    sound_speed: float = 1485.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise UnitError(f"radius must be positive: {self.radius_m}")
        if self.sound_speed <= 0.0:
            raise UnitError(f"sound speed must be positive: {self.sound_speed}")

    def wavenumber(self, frequency_hz: float) -> float:
        """k = 2 pi f / c."""
        if frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {frequency_hz}")
        return 2.0 * math.pi * frequency_hz / self.sound_speed

    def rayleigh_distance_m(self, frequency_hz: float) -> float:
        """Near-field/far-field boundary ``a^2 / lambda``."""
        wavelength = self.sound_speed / frequency_hz
        return self.radius_m ** 2 / wavelength

    def on_axis_pressure_ratio(self, distance_m: float, frequency_hz: float) -> float:
        """|p(z)| relative to the surface pressure ``rho c v``.

        Exact axial solution of the baffled piston:
        ``|p| = 2 |sin(k/2 (sqrt(z^2 + a^2) - z))|``.
        Oscillates between 0 and 2 in the near field; decays ~1/z in the
        far field.
        """
        if distance_m < 0.0:
            raise UnitError(f"distance must be non-negative: {distance_m}")
        k = self.wavenumber(frequency_hz)
        path_difference = math.sqrt(distance_m ** 2 + self.radius_m ** 2) - distance_m
        return 2.0 * abs(math.sin(0.5 * k * path_difference))

    def directivity(self, frequency_hz: float, angle_rad: float) -> float:
        """Far-field pattern ``|2 J1(x) / x|`` with ``x = k a sin(theta)``."""
        x = self.wavenumber(frequency_hz) * self.radius_m * math.sin(angle_rad)
        if abs(x) < 1e-9:
            return 1.0
        return abs(2.0 * float(j1(x)) / x)

    def beamwidth_deg(self, frequency_hz: float) -> float:
        """Full -3 dB beamwidth; 360 when the piston is omnidirectional.

        Solved numerically on the monotone first lobe.
        """
        target = 10.0 ** (-3.0 / 20.0)
        low, high = 0.0, math.pi / 2.0
        if self.directivity(frequency_hz, high) > target:
            return 360.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.directivity(frequency_hz, mid) > target:
                low = mid
            else:
                high = mid
        return 2.0 * math.degrees(low)

    def point_source_error_db(self, distance_m: float, frequency_hz: float) -> float:
        """How far the 1/r point model strays from the piston, in dB.

        Compares the true axial ratio against a 1/r law anchored in the
        far field (10 Rayleigh distances out).  Large values inside the
        near field justify the calibrated coupling constant absorbing
        the difference.
        """
        if distance_m <= 0.0:
            raise UnitError(f"distance must be positive: {distance_m}")
        anchor = 10.0 * max(self.rayleigh_distance_m(frequency_hz), self.radius_m)
        true_ratio = self.on_axis_pressure_ratio(distance_m, frequency_hz)
        anchor_ratio = self.on_axis_pressure_ratio(anchor, frequency_hz)
        if true_ratio <= 0.0:  # an axial null: the point model is "infinitely" wrong
            return float("inf")
        point_ratio = anchor_ratio * (anchor / distance_m)
        return 20.0 * math.log10(point_ratio / true_ratio)
