"""Speaker arrays: the "more sophisticated attacker" of Section 5.

One commercial speaker tops out around 140 dB; the paper notes that a
determined attacker can do better.  Besides buying a bigger projector,
the standard engineering move is an *array*: N elements driven in phase
add coherently on axis (+6 dB of source level per doubling) and form a
beam whose width shrinks with the array's aperture — more level on the
target, less spilled where hydrophones might listen.

:class:`SpeakerArray` models a uniform line array of identical
elements: combined on-axis source level, far-field directivity, and the
resulting received level at an off-axis observer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, UnitError

from .source import UnderwaterSpeaker

__all__ = ["SpeakerArray"]


@dataclass
class SpeakerArray:
    """A uniform line array of identical transducers.

    Attributes:
        element: the individual speaker model.
        count: number of elements (>= 1).
        spacing_m: centre-to-centre element spacing.  Spacing above half
            a wavelength produces grating lobes; :meth:`has_grating_lobes`
            reports when that happens for a given tone.
        sound_speed: propagation speed used for beam math.
    """

    element: UnderwaterSpeaker = field(default_factory=UnderwaterSpeaker)
    count: int = 4
    spacing_m: float = 0.5
    sound_speed: float = 1485.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"element count must be >= 1: {self.count}")
        if self.spacing_m <= 0.0:
            raise UnitError(f"spacing must be positive: {self.spacing_m}")
        if self.sound_speed <= 0.0:
            raise UnitError(f"sound speed must be positive: {self.sound_speed}")

    # -- level -----------------------------------------------------------------

    def coherent_gain_db(self) -> float:
        """On-axis gain over one element: 20 log10(N)."""
        return 20.0 * math.log10(self.count)

    def source_level_db(self, element_level_db: float) -> float:
        """Combined on-axis source level given each element's level."""
        return element_level_db + self.coherent_gain_db()

    # -- geometry ----------------------------------------------------------------

    @property
    def aperture_m(self) -> float:
        """Physical length of the array."""
        return (self.count - 1) * self.spacing_m

    def wavelength_m(self, frequency_hz: float) -> float:
        """Wavelength at the operating tone."""
        if frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {frequency_hz}")
        return self.sound_speed / frequency_hz

    def has_grating_lobes(self, frequency_hz: float) -> bool:
        """True when spacing exceeds half a wavelength."""
        return self.spacing_m > self.wavelength_m(frequency_hz) / 2.0

    # -- directivity --------------------------------------------------------------

    def directivity(self, frequency_hz: float, angle_rad: float) -> float:
        """Far-field array factor magnitude in [0, 1] at ``angle_rad``.

        ``|sin(N psi / 2) / (N sin(psi / 2))|`` with
        ``psi = 2 pi d sin(theta) / lambda``; 1.0 on axis.
        """
        if self.count == 1:
            return 1.0
        psi = (
            2.0
            * math.pi
            * self.spacing_m
            * math.sin(angle_rad)
            / self.wavelength_m(frequency_hz)
        )
        if abs(psi) < 1e-12:
            return 1.0
        numerator = math.sin(self.count * psi / 2.0)
        denominator = self.count * math.sin(psi / 2.0)
        if abs(denominator) < 1e-12:
            return 1.0  # grating-lobe direction: full coherence again
        return abs(numerator / denominator)

    def beamwidth_deg(self, frequency_hz: float) -> float:
        """Full width of the main lobe between first nulls, degrees.

        First null of a uniform array sits at
        ``sin(theta) = lambda / (N d)``; 180 degrees when the array is
        too small to form a null at this frequency.
        """
        if self.count == 1:
            return 360.0
        argument = self.wavelength_m(frequency_hz) / (self.count * self.spacing_m)
        if argument >= 1.0:
            return 360.0
        return 2.0 * math.degrees(math.asin(argument))

    def received_level_db(
        self,
        element_level_db: float,
        frequency_hz: float,
        angle_rad: float = 0.0,
    ) -> float:
        """Source level toward ``angle_rad`` (before propagation loss)."""
        factor = self.directivity(frequency_hz, angle_rad)
        if factor <= 0.0:
            return -math.inf
        return self.source_level_db(element_level_db) + 20.0 * math.log10(factor)
