"""Attack waveform generation.

The paper drives its underwater speaker with sine waves produced by GNU
Radio on a laptop.  This module is the equivalent software source: pure
tones, linear/logarithmic frequency sweeps (the paper sweeps 100 Hz to
16.9 kHz, narrowing to 50 Hz steps near vulnerable bands), and composite
multi-tone signals.  Signals can be sampled to numpy arrays for
inspection and report their instantaneous frequency/amplitude for the
coupling model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, UnitError

__all__ = [
    "Signal",
    "SineTone",
    "FrequencySweep",
    "CompositeSignal",
    "Silence",
    "sweep_plan",
]


class Signal:
    """Base class for time-domain signals with unit peak amplitude.

    Subclasses report instantaneous frequency and a relative amplitude
    envelope in [0, 1]; the absolute pressure scale is applied later by
    the speaker/amplifier chain.
    """

    duration: float

    def frequency_at(self, t: float) -> float:
        """Instantaneous frequency in Hz at time ``t`` (seconds)."""
        raise NotImplementedError

    def envelope_at(self, t: float) -> float:
        """Relative amplitude envelope in [0, 1] at time ``t``."""
        raise NotImplementedError

    def sample(self, sample_rate_hz: float, duration: "float | None" = None) -> np.ndarray:
        """Render the waveform to a numpy array at ``sample_rate_hz``.

        Uses phase accumulation so sweeps are continuous in phase.
        """
        if sample_rate_hz <= 0.0:
            raise UnitError(f"sample rate must be positive: {sample_rate_hz}")
        total = self.duration if duration is None else duration
        n = max(1, int(round(total * sample_rate_hz)))
        dt = 1.0 / sample_rate_hz
        out = np.empty(n, dtype=np.float64)
        phase = 0.0
        for i in range(n):
            t = i * dt
            freq = self.frequency_at(t)
            out[i] = self.envelope_at(t) * math.sin(phase)
            phase += 2.0 * math.pi * freq * dt
        return out


@dataclass
class SineTone(Signal):
    """A constant-frequency sine tone — the paper's attack waveform."""

    frequency_hz: float
    duration: float = math.inf
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {self.frequency_hz}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise UnitError(f"relative amplitude must be in [0, 1]: {self.amplitude}")
        if self.duration <= 0.0:
            raise UnitError(f"duration must be positive: {self.duration}")

    def frequency_at(self, t: float) -> float:
        return self.frequency_hz

    def envelope_at(self, t: float) -> float:
        return self.amplitude if 0.0 <= t <= self.duration else 0.0


@dataclass
class FrequencySweep(Signal):
    """A frequency sweep (chirp), linear or logarithmic in frequency."""

    start_hz: float
    stop_hz: float
    duration: float
    logarithmic: bool = False
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.start_hz <= 0.0 or self.stop_hz <= 0.0:
            raise UnitError("sweep frequencies must be positive")
        if self.duration <= 0.0 or not math.isfinite(self.duration):
            raise UnitError(f"sweep duration must be finite positive: {self.duration}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise UnitError(f"relative amplitude must be in [0, 1]: {self.amplitude}")

    def frequency_at(self, t: float) -> float:
        frac = min(max(t / self.duration, 0.0), 1.0)
        if self.logarithmic:
            log_f = math.log(self.start_hz) + frac * (
                math.log(self.stop_hz) - math.log(self.start_hz)
            )
            return math.exp(log_f)
        return self.start_hz + frac * (self.stop_hz - self.start_hz)

    def envelope_at(self, t: float) -> float:
        return self.amplitude if 0.0 <= t <= self.duration else 0.0


@dataclass
class CompositeSignal(Signal):
    """Several signals played back-to-back (e.g. a stepped sweep)."""

    parts: Sequence[Signal] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.parts:
            raise ConfigurationError("composite signal needs at least one part")
        for part in self.parts:
            if not math.isfinite(part.duration):
                raise ConfigurationError("composite parts must have finite duration")
        self.duration = sum(part.duration for part in self.parts)

    def _locate(self, t: float) -> Tuple[Signal, float]:
        offset = t
        for part in self.parts:
            if offset <= part.duration:
                return part, offset
            offset -= part.duration
        return self.parts[-1], self.parts[-1].duration

    def frequency_at(self, t: float) -> float:
        part, local_t = self._locate(t)
        return part.frequency_at(local_t)

    def envelope_at(self, t: float) -> float:
        if t < 0.0 or t > self.duration:
            return 0.0
        part, local_t = self._locate(t)
        return part.envelope_at(local_t)


@dataclass
class Silence(Signal):
    """A gap in the transmission (speaker keyed off)."""

    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise UnitError(f"duration must be positive: {self.duration}")

    def frequency_at(self, t: float) -> float:
        return 1.0  # arbitrary; envelope is zero

    def envelope_at(self, t: float) -> float:
        return 0.0


def sweep_plan(
    start_hz: float,
    stop_hz: float,
    coarse_step_hz: float = 100.0,
    fine_step_hz: float = 50.0,
    fine_bands: "Sequence[Tuple[float, float]] | None" = None,
) -> List[float]:
    """Frequencies to test, mirroring the paper's sweep methodology.

    The paper sweeps 100 Hz - 16.9 kHz and narrows to 50 Hz increments
    between vulnerable frequencies.  ``fine_bands`` lists (low, high)
    ranges that get the fine step; everywhere else uses the coarse step.
    """
    if start_hz <= 0.0 or stop_hz <= start_hz:
        raise UnitError("need 0 < start_hz < stop_hz")
    if coarse_step_hz <= 0.0 or fine_step_hz <= 0.0:
        raise UnitError("steps must be positive")
    bands = list(fine_bands or [])
    frequencies: List[float] = []
    f = start_hz
    while f <= stop_hz + 1e-9:
        frequencies.append(round(f, 6))
        in_fine = any(low <= f < high for low, high in bands)
        f += fine_step_hz if in_fine else coarse_step_hz
    return frequencies
