"""Sound sources: amplifier and underwater speaker models.

The paper's transmit chain is a laptop running GNU Radio -> a TOA
BG-2120 120 W mixer/amplifier -> a Clark Synthesis AQ339 "Diluvio"
underwater transducer.  We model the chain as:

    drive level (digital, 0..1) -> amplifier gain (volts)
    -> speaker sensitivity (dB re 1 uPa/V at the reference distance)
    -> source level (dB re 1 uPa at reference distance)

with a speaker band-pass response and a maximum output limited by the
amplifier's rated power.  The defaults are calibrated so the full chain
at maximum drive emits the paper's 140 dB SPL at the 1 cm reference — a
level achievable by commercial pool speakers and far below the
~220 dB SPL of naval sonars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, UnitError

from .signals import Signal, SineTone

__all__ = ["Amplifier", "UnderwaterSpeaker", "SignalChain"]


@dataclass(frozen=True)
class Amplifier:
    """A power amplifier with a gain control and output voltage limit."""

    name: str = "TOA BG-2120 class"
    max_output_vrms: float = 31.0  # ~120 W into 8 ohm
    gain: float = 1.0  # volume knob, 0..1

    def __post_init__(self) -> None:
        if self.max_output_vrms <= 0.0:
            raise UnitError(f"output voltage must be positive: {self.max_output_vrms}")
        if not 0.0 <= self.gain <= 1.0:
            raise ConfigurationError(f"gain must be in [0, 1]: {self.gain}")

    def output_vrms(self, drive_level: float) -> float:
        """RMS output voltage for a digital drive level in [0, 1]."""
        if not 0.0 <= drive_level <= 1.0:
            raise UnitError(f"drive level must be in [0, 1]: {drive_level}")
        return self.max_output_vrms * self.gain * drive_level

    def with_gain(self, gain: float) -> "Amplifier":
        """Copy of this amplifier with the volume knob moved."""
        return Amplifier(self.name, self.max_output_vrms, gain)


@dataclass(frozen=True)
class UnderwaterSpeaker:
    """An underwater transducer (Clark Synthesis AQ339 Diluvio class).

    Attributes:
        sensitivity_db: source level in dB re 1 uPa at the reference
            distance produced by 1 Vrms of drive, at mid-band.
        reference_distance_m: distance at which the source level is
            specified.  The paper reports attack SPL at the 1 cm speaker
            face, so we use 1 cm.
        low_cutoff_hz / high_cutoff_hz: -3 dB band edges of the
            transducer response (the AQ339 is rated ~20 Hz - 17 kHz).
    """

    name: str = "Clark Synthesis AQ339 class"
    sensitivity_db: float = 110.2
    reference_distance_m: float = 0.01
    low_cutoff_hz: float = 20.0
    high_cutoff_hz: float = 17_000.0

    def __post_init__(self) -> None:
        if self.reference_distance_m <= 0.0:
            raise UnitError("reference distance must be positive")
        if not 0.0 < self.low_cutoff_hz < self.high_cutoff_hz:
            raise ConfigurationError("need 0 < low cutoff < high cutoff")

    def band_response_db(self, frequency_hz: float) -> float:
        """Band-pass response in dB relative to mid-band (first order)."""
        if frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {frequency_hz}")
        low_ratio = self.low_cutoff_hz / frequency_hz
        high_ratio = frequency_hz / self.high_cutoff_hz
        low_loss = 10.0 * math.log10(1.0 + low_ratio * low_ratio)
        high_loss = 10.0 * math.log10(1.0 + high_ratio * high_ratio)
        return -(low_loss + high_loss)

    def source_level_db(self, drive_vrms: float, frequency_hz: float) -> float:
        """Source level in dB re 1 uPa at the reference distance."""
        if drive_vrms <= 0.0:
            raise UnitError(f"drive voltage must be positive: {drive_vrms}")
        return (
            self.sensitivity_db
            + 20.0 * math.log10(drive_vrms)
            + self.band_response_db(frequency_hz)
        )


@dataclass
class SignalChain:
    """The full transmit chain: signal -> amplifier -> speaker.

    :meth:`source_level_db` reports the emitted level for the signal's
    instantaneous frequency, the quantity the propagation model consumes.
    """

    signal: Signal
    amplifier: Amplifier = Amplifier()
    speaker: UnderwaterSpeaker = UnderwaterSpeaker()
    drive_level: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drive_level <= 1.0:
            raise ConfigurationError(f"drive level must be in [0, 1]: {self.drive_level}")

    @property
    def reference_distance_m(self) -> float:
        """Distance at which :meth:`source_level_db` is referenced."""
        return self.speaker.reference_distance_m

    def source_level_db(self, t: float = 0.0) -> float:
        """Emitted level (dB re 1 uPa @ reference distance) at time ``t``.

        Returns ``-inf`` when the signal envelope is zero (silence).
        """
        envelope = self.signal.envelope_at(t)
        if envelope <= 0.0:
            return -math.inf
        vrms = self.amplifier.output_vrms(self.drive_level * envelope)
        if vrms <= 0.0:
            return -math.inf
        return self.speaker.source_level_db(vrms, self.signal.frequency_at(t))

    def frequency_at(self, t: float = 0.0) -> float:
        """Instantaneous transmit frequency at time ``t``."""
        return self.signal.frequency_at(t)

    @staticmethod
    def tone_at_level(frequency_hz: float, source_level_db: float) -> "SignalChain":
        """Build a chain that emits a pure tone at exactly ``source_level_db``.

        Works backwards through the default speaker/amplifier models to
        find the drive level; raises if the chain cannot reach the level.
        """
        chain = SignalChain(signal=SineTone(frequency_hz))
        full = chain.source_level_db(0.0)
        deficit_db = source_level_db - full
        drive = 10.0 ** (deficit_db / 20.0)
        if drive > 1.0 + 1e-9:
            raise ConfigurationError(
                f"chain cannot reach {source_level_db:.1f} dB at "
                f"{frequency_hz:.0f} Hz (max {full:.1f} dB)"
            )
        chain.drive_level = min(drive, 1.0)
        return chain
