"""Acoustic media: water columns, air, and the nitrogen fill gas.

A medium is characterised by its density and sound speed, which together
give its characteristic acoustic impedance ``Z = rho * c``.  Impedance
ratios drive the transmission coefficients at the container wall
(:mod:`repro.vibration.transmission`), and water conditions
(temperature, salinity, depth, pH) drive the sound speed and absorption
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import UnitError


@dataclass(frozen=True)
class WaterConditions:
    """Environmental parameters of a water column.

    Attributes:
        temperature_c: water temperature in Celsius.
        salinity_ppt: salinity in parts per thousand (0 for fresh water,
            ~35 for open ocean).
        depth_m: depth of the acoustic path below the surface, metres.
        ph: acidity, relevant to the boric-acid absorption term.
    """

    temperature_c: float = 20.0
    salinity_ppt: float = 0.0
    depth_m: float = 0.5
    ph: float = 7.7

    def __post_init__(self) -> None:
        if not -4.0 <= self.temperature_c <= 60.0:
            raise UnitError(f"unsupported water temperature: {self.temperature_c} C")
        if not 0.0 <= self.salinity_ppt <= 45.0:
            raise UnitError(f"unsupported salinity: {self.salinity_ppt} ppt")
        if self.depth_m < 0.0:
            raise UnitError(f"depth must be non-negative: {self.depth_m}")
        if not 6.0 <= self.ph <= 9.0:
            raise UnitError(f"unsupported pH: {self.ph}")

    @staticmethod
    def tank() -> "WaterConditions":
        """The paper's laboratory tank: fresh water at room temperature."""
        return WaterConditions(temperature_c=21.0, salinity_ppt=0.0, depth_m=0.3)

    @staticmethod
    def baltic_50m() -> "WaterConditions":
        """Baltic Sea at 50 m, used for the paper's attenuation example."""
        return WaterConditions(temperature_c=6.0, salinity_ppt=8.0, depth_m=50.0, ph=7.9)

    @staticmethod
    def natick_site() -> "WaterConditions":
        """Conditions near Microsoft's ~36 m Project Natick deployment."""
        return WaterConditions(temperature_c=10.0, salinity_ppt=35.0, depth_m=36.0, ph=8.0)


@dataclass(frozen=True)
class Medium:
    """A homogeneous acoustic medium.

    Attributes:
        name: human-readable label.
        density: kg/m^3.
        sound_speed: m/s.
        conditions: for water media, the environmental parameters the
            density/speed were derived from; None for gases.
    """

    name: str
    density: float
    sound_speed: float
    conditions: "WaterConditions | None" = field(default=None)

    def __post_init__(self) -> None:
        if self.density <= 0.0:
            raise UnitError(f"density must be positive: {self.density}")
        if self.sound_speed <= 0.0:
            raise UnitError(f"sound speed must be positive: {self.sound_speed}")

    @property
    def impedance(self) -> float:
        """Characteristic acoustic impedance ``rho * c`` in rayl."""
        return self.density * self.sound_speed

    def wavelength(self, frequency_hz: float) -> float:
        """Wavelength in metres of a tone at ``frequency_hz``."""
        if frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {frequency_hz}")
        return self.sound_speed / frequency_hz

    @staticmethod
    def water(conditions: WaterConditions) -> "Medium":
        """Build a water medium whose sound speed follows Medwin (1975)."""
        from .sound_speed import sound_speed_medwin

        speed = sound_speed_medwin(
            conditions.temperature_c, conditions.salinity_ppt, conditions.depth_m
        )
        # Density rises roughly 0.8 kg/m^3 per ppt of salinity.
        density = units.DENSITY_FRESH_WATER + 0.8 * conditions.salinity_ppt
        name = "sea water" if conditions.salinity_ppt > 0.5 else "fresh water"
        return Medium(name=name, density=density, sound_speed=speed, conditions=conditions)


#: Fresh water at the tank conditions used in the paper's experiments.
FRESH_WATER = Medium.water(WaterConditions.tank())

#: Open-ocean sea water (35 ppt) at a Natick-like site.
SEA_WATER = Medium.water(WaterConditions.natick_site())

#: Room air.
AIR = Medium("air", units.DENSITY_AIR, units.SOUND_SPEED_AIR)

#: The nitrogen atmosphere inside a sealed subsea data-center vessel.
NITROGEN = Medium("nitrogen", units.DENSITY_NITROGEN, units.SOUND_SPEED_NITROGEN)
