"""Underwater acoustics substrate.

Implements the physics that Section 2.2 of the paper relies on: acoustic
media, sound speed in water (Medwin's equation), frequency-dependent
absorption (Fisher & Simmons 1977; Ainslie & McColm 1998 as used by
van Moll et al. 2009), sound pressure level algebra including the
air-to-water +26 dB reference shift, signal generation, speaker and
amplifier models, and propagation loss in open water and in the test
tank.
"""

from .medium import AIR, FRESH_WATER, NITROGEN, SEA_WATER, Medium, WaterConditions
from .sound_speed import sound_speed_leroy, sound_speed_mackenzie, sound_speed_medwin
from .absorption import absorption_ainslie_mccolm, absorption_fisher_simmons
from .spl import (
    pressure_to_spl,
    spl_air_to_water,
    spl_sum,
    spl_to_pressure,
    spl_water_to_air,
)
from .signals import CompositeSignal, FrequencySweep, Silence, SineTone, Signal
from .source import Amplifier, SignalChain, UnderwaterSpeaker
from .propagation import PropagationModel, TankModel, spherical_spreading_db
from .spectrum import Spectrum, analyze, dominant_tone
from .ambient import AmbientNoise
from .arrays import SpeakerArray
from .piston import CircularPiston

__all__ = [
    "AIR",
    "FRESH_WATER",
    "NITROGEN",
    "SEA_WATER",
    "Medium",
    "WaterConditions",
    "sound_speed_medwin",
    "sound_speed_mackenzie",
    "sound_speed_leroy",
    "absorption_fisher_simmons",
    "absorption_ainslie_mccolm",
    "pressure_to_spl",
    "spl_to_pressure",
    "spl_air_to_water",
    "spl_water_to_air",
    "spl_sum",
    "Signal",
    "SineTone",
    "FrequencySweep",
    "CompositeSignal",
    "Silence",
    "UnderwaterSpeaker",
    "Amplifier",
    "SignalChain",
    "PropagationModel",
    "TankModel",
    "spherical_spreading_db",
    "Spectrum",
    "analyze",
    "dominant_tone",
    "AmbientNoise",
    "SpeakerArray",
    "CircularPiston",
]
