"""Frequency-dependent sound absorption in water.

The paper cites Fisher & Simmons (1977) [15] for the absorption
coefficient and van Moll, Ainslie & van Vossen (2009) [47] — who
recommend the Ainslie & McColm (1998) formula — for the "0.038 dB/km at
500 Hz in the Baltic at 50 m" example.  Both are implemented here.

Absorption in sea water has three contributions:

* boric acid relaxation (dominates below ~1 kHz in sea water),
* magnesium sulfate relaxation (~10 kHz-100 kHz),
* pure-water viscous absorption (above ~100 kHz).

In the paper's fresh-water tank only the viscous term survives, which is
why absorption is negligible over the 25 cm attack range and spreading
loss dominates the distance results of Table 1.

All functions return the absorption coefficient **alpha in dB/km**.
"""

from __future__ import annotations

import math

from repro.errors import UnitError
from repro.units import depth_to_pressure_atm

from .medium import WaterConditions

__all__ = [
    "absorption_ainslie_mccolm",
    "absorption_fisher_simmons",
    "absorption_for_conditions",
]


def _check_frequency(frequency_hz: float) -> float:
    # `not (0 < f < inf)` also rejects NaN and +inf, which `f <= 0`
    # would wave through and turn into NaN absorption downstream.
    if not (0.0 < frequency_hz < math.inf):
        raise UnitError(f"frequency must be positive and finite: {frequency_hz}")
    return frequency_hz / 1000.0  # both formulas work in kHz


def absorption_ainslie_mccolm(
    frequency_hz: float,
    temperature_c: float = 20.0,
    salinity_ppt: float = 35.0,
    depth_m: float = 0.0,
    ph: float = 8.0,
) -> float:
    """Ainslie & McColm (1998) absorption in dB/km.

    This is the "simple and accurate" formula endorsed by van Moll et
    al. (2009), the paper's reference [47].  Valid for 100 Hz - 1 MHz,
    -6 to 35 C, 5-50 ppt, 0-7 km depth, pH 7.7-8.3 (extrapolates
    smoothly outside).
    """
    f = _check_frequency(frequency_hz)
    t = temperature_c
    s = salinity_ppt
    z_km = depth_m / 1000.0

    # Boric acid relaxation frequency (kHz).
    f1 = 0.78 * math.sqrt(s / 35.0) * math.exp(t / 26.0)
    # Magnesium sulfate relaxation frequency (kHz).
    f2 = 42.0 * math.exp(t / 17.0)

    boric = (
        0.106
        * (f1 * f * f) / (f1 * f1 + f * f)
        * math.exp((ph - 8.0) / 0.56)
    )
    magnesium = (
        0.52
        * (1.0 + t / 43.0)
        * (s / 35.0)
        * (f2 * f * f) / (f2 * f2 + f * f)
        * math.exp(-z_km / 6.0)
    )
    viscous = 0.00049 * f * f * math.exp(-(t / 27.0 + z_km / 17.0))
    return boric + magnesium + viscous


def absorption_fisher_simmons(
    frequency_hz: float,
    temperature_c: float = 20.0,
    depth_m: float = 0.0,
) -> float:
    """Fisher & Simmons (1977) absorption in dB/km (paper reference [15]).

    Fitted for sea water of salinity 35 ppt and pH 8; depends on
    temperature and pressure (depth).  We evaluate their three-term
    expression with pressure in atmospheres.
    """
    f_khz = _check_frequency(frequency_hz)
    f = f_khz * 1000.0  # this formula wants Hz
    t = temperature_c
    t_k = t + 273.15
    p_atm = depth_to_pressure_atm(depth_m)

    # Relaxation frequencies in Hz.
    f1 = 1320.0 * t_k * math.exp(-1700.0 / t_k)
    f2 = 1.55e7 * t_k * math.exp(-3052.0 / t_k)

    # Coefficients (Np s^2 / m style fits, folded constants).
    a1 = 8.95e-8 * (1.0 + 2.3e-2 * t - 5.1e-4 * t * t)
    a2 = 4.88e-7 * (1.0 + 1.3e-2 * t) * (1.0 - 0.9e-3 * p_atm)
    a3 = 4.76e-13 * (1.0 - 4.0e-2 * t + 5.9e-4 * t * t) * (1.0 - 3.8e-4 * p_atm)

    alpha_db_per_m = (
        a1 * f1 * f * f / (f1 * f1 + f * f)
        + a2 * f2 * f * f / (f2 * f2 + f * f)
        + a3 * f * f
    )
    return alpha_db_per_m * 1000.0


def absorption_for_conditions(frequency_hz: float, conditions: WaterConditions) -> float:
    """Absorption in dB/km for a :class:`WaterConditions`, in dB/km.

    Fresh water (salinity below 0.5 ppt) has no boric/magnesium
    relaxation, so only the viscous term of Ainslie & McColm applies.
    """
    if conditions.salinity_ppt < 0.5:
        f = _check_frequency(frequency_hz)
        z_km = conditions.depth_m / 1000.0
        return 0.00049 * f * f * math.exp(
            -(conditions.temperature_c / 27.0 + z_km / 17.0)
        )
    return absorption_ainslie_mccolm(
        frequency_hz,
        temperature_c=conditions.temperature_c,
        salinity_ppt=conditions.salinity_ppt,
        depth_m=conditions.depth_m,
        ph=conditions.ph,
    )
