"""Ambient ocean noise (Wenz curves).

A real detector does not listen against silence: the sea has a
frequency-dependent noise floor from shipping, wind/sea state, and
thermal noise (Wenz 1962).  This module implements the standard
parametric approximation of the Wenz curves as spectral levels
(dB re 1 uPa^2/Hz) and integrates them into band levels, giving the
defender's hydrophone a realistic floor and letting experiments compute
the attacker's detectability (SNR) as a function of range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import UnitError

__all__ = ["AmbientNoise"]


@dataclass(frozen=True)
class AmbientNoise:
    """Parametric Wenz-curve ambient noise.

    Attributes:
        shipping_level: shipping activity index in [0, 1]
            (0 = remote, 1 = heavy traffic lanes).
        wind_speed_ms: surface wind speed (sea-state proxy), m/s.
    """

    shipping_level: float = 0.5
    wind_speed_ms: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.shipping_level <= 1.0:
            raise UnitError(f"shipping level must be in [0, 1]: {self.shipping_level}")
        if not 0.0 <= self.wind_speed_ms <= 40.0:
            raise UnitError(f"wind speed out of range: {self.wind_speed_ms}")

    # -- spectral components (dB re 1 uPa^2/Hz) ------------------------------------

    def turbulence_psd_db(self, frequency_hz: float) -> float:
        """Low-frequency ocean turbulence (dominant below ~10 Hz)."""
        self._check(frequency_hz)
        return 17.0 - 30.0 * math.log10(frequency_hz / 1.0 + 1e-12)

    def shipping_psd_db(self, frequency_hz: float) -> float:
        """Distant shipping (dominant ~10-300 Hz)."""
        self._check(frequency_hz)
        f_khz = frequency_hz / 1000.0
        return (
            40.0
            + 20.0 * (self.shipping_level - 0.5)
            + 26.0 * math.log10(f_khz + 1e-12)
            - 60.0 * math.log10(f_khz + 0.03)
        )

    def wind_psd_db(self, frequency_hz: float) -> float:
        """Wind/sea-surface agitation (dominant ~0.3-50 kHz)."""
        self._check(frequency_hz)
        f_khz = frequency_hz / 1000.0
        return (
            50.0
            + 7.5 * math.sqrt(self.wind_speed_ms)
            + 20.0 * math.log10(f_khz + 1e-12)
            - 40.0 * math.log10(f_khz + 0.4)
        )

    def thermal_psd_db(self, frequency_hz: float) -> float:
        """Molecular thermal noise (dominant above ~50 kHz)."""
        self._check(frequency_hz)
        f_khz = frequency_hz / 1000.0
        return -15.0 + 20.0 * math.log10(f_khz + 1e-12)

    @staticmethod
    def _check(frequency_hz: float) -> None:
        if frequency_hz <= 0.0:
            raise UnitError(f"frequency must be positive: {frequency_hz}")

    # -- combined ---------------------------------------------------------------------

    def spectral_level_db(self, frequency_hz: float) -> float:
        """Total noise PSD at ``frequency_hz`` (power sum of components)."""
        components = (
            self.turbulence_psd_db(frequency_hz),
            self.shipping_psd_db(frequency_hz),
            self.wind_psd_db(frequency_hz),
            self.thermal_psd_db(frequency_hz),
        )
        power = sum(10.0 ** (level / 10.0) for level in components)
        return 10.0 * math.log10(power)

    def band_level_db(self, low_hz: float, high_hz: float, points: int = 64) -> float:
        """Noise level integrated over [low, high] Hz (dB re 1 uPa)."""
        if not 0.0 < low_hz < high_hz:
            raise UnitError("need 0 < low < high")
        log_low, log_high = math.log(low_hz), math.log(high_hz)
        total = 0.0
        for i in range(points):
            f0 = math.exp(log_low + (log_high - log_low) * i / points)
            f1 = math.exp(log_low + (log_high - log_low) * (i + 1) / points)
            psd = 10.0 ** (self.spectral_level_db(math.sqrt(f0 * f1)) / 10.0)
            total += psd * (f1 - f0)
        return 10.0 * math.log10(total)

    def detection_range_m(
        self,
        source_level_db: float,
        frequency_hz: float,
        detection_threshold_db: float = 10.0,
        analysis_bandwidth_hz: float = 10.0,
        reference_m: float = 0.01,
    ) -> float:
        """How far away a defender can *hear* the attack tone.

        Narrowband detection: the tone is detectable while its received
        level exceeds the ambient noise in the analysis band by the
        detection threshold.  Spherical spreading only (conservative).
        """
        low = max(1.0, frequency_hz - analysis_bandwidth_hz / 2.0)
        noise = self.band_level_db(low, frequency_hz + analysis_bandwidth_hz / 2.0)
        margin_db = source_level_db - noise - detection_threshold_db
        if margin_db <= 0.0:
            return 0.0
        return reference_m * 10.0 ** (margin_db / 20.0)

    @staticmethod
    def quiet_site() -> "AmbientNoise":
        """Remote, calm site."""
        return AmbientNoise(shipping_level=0.1, wind_speed_ms=2.0)

    @staticmethod
    def harbor() -> "AmbientNoise":
        """Busy coastal waters."""
        return AmbientNoise(shipping_level=0.9, wind_speed_ms=8.0)
