"""Per-bay, per-rack, and fleet health rollups.

The rack physics give per-bay write/read success probabilities
(:meth:`~repro.core.fleet.DriveRack.write_success_probabilities`), and
:class:`~repro.core.monitor.AvailabilityMonitor` reports hard crashes.
:class:`HealthTracker` folds both into a small state machine per unit:

``healthy`` → ``degraded`` → ``stalled`` → ``crashed``

with worst-state-wins rollups (bay → rack → fleet).  Every transition
is timestamped on the virtual clock and, when a
:class:`~repro.obs.timeseries.SeriesRecorder` is attached, mirrored
into ``health/{unit}`` value series (numeric severity, so dashboards
can render a heatmap) — which keeps the rollup history mergeable across
SweepRunner workers like any other series.

Monitor step-budget truncation (satellite of PR 8) is surfaced here
too: :meth:`HealthTracker.mark_truncated` records that a unit's
"survived" verdict is unproven, distinct from a genuine survival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from .timeseries import SeriesRecorder

__all__ = [
    "HEALTH_STATES",
    "SEVERITY",
    "classify_probability",
    "HealthTransition",
    "HealthTracker",
]

#: Ordered worst-last; rollups take the maximum severity.
HEALTH_STATES = ("healthy", "degraded", "stalled", "crashed")
SEVERITY: Dict[str, int] = {state: rank for rank, state in enumerate(HEALTH_STATES)}


def classify_probability(p: float, healthy_threshold: float = 1.0) -> str:
    """Map a write/read success probability to a health state.

    A bay whose success probability collapsed to zero is stalled (the
    paper's terminal pre-crash state); anything below the healthy
    threshold is degraded.
    """
    if p <= 0.0:
        return "stalled"
    if p >= healthy_threshold:
        return "healthy"
    return "degraded"


@dataclass(frozen=True)
class HealthTransition:
    """One state change of one unit, on the virtual clock."""

    t_s: float
    unit: str
    state: str
    previous: str
    detail: str = ""


@dataclass
class HealthTracker:
    """Tracks unit health and rolls it up to racks and the fleet.

    Units are named hierarchically: ``rack0/bay3`` rolls up into
    ``rack0``, which rolls up into the fleet.  Crashed is terminal for
    a unit: later probability observations cannot resurrect it.
    """

    recorder: Optional[SeriesRecorder] = None
    healthy_threshold: float = 1.0
    states: Dict[str, str] = field(default_factory=dict)
    timeline: List[HealthTransition] = field(default_factory=list)
    truncated_units: List[str] = field(default_factory=list)

    # -- observations -------------------------------------------------

    def observe_bay(
        self, rack: str, bay: int, probability: float, t_s: float
    ) -> str:
        """Classify one bay from its success probability."""
        state = classify_probability(probability, self.healthy_threshold)
        return self._set_state(
            f"{rack}/bay{bay}", state, t_s, detail=f"p={probability:.6g}"
        )

    def observe_rack(
        self, rack: str, probabilities: Mapping[int, float], t_s: float
    ) -> str:
        """Classify every bay of a rack and refresh the rack rollup."""
        for bay in sorted(probabilities):
            self.observe_bay(rack, bay, probabilities[bay], t_s)
        return self.states.get(rack, "healthy")

    def mark_crashed(self, unit: str, t_s: float, detail: str = "") -> str:
        """Record a terminal crash (e.g. from a CrashReport)."""
        return self._set_state(unit, "crashed", t_s, detail=detail, terminal=True)

    def mark_truncated(self, unit: str, t_s: float, detail: str = "") -> None:
        """Record that a unit's watch ended on step-budget exhaustion:
        its apparent survival is unproven, not a clean bill of health."""
        if unit not in self.truncated_units:
            self.truncated_units.append(unit)
        self.timeline.append(
            HealthTransition(
                t_s=t_s,
                unit=unit,
                state=self.states.get(unit, "healthy"),
                previous=self.states.get(unit, "healthy"),
                detail=detail or "monitor step budget exhausted",
            )
        )
        if self.recorder is not None:
            self.recorder.record(f"health/{unit}/truncated", t_s, 1.0)

    # -- rollups ------------------------------------------------------

    def unit_state(self, unit: str) -> str:
        return self.states.get(unit, "healthy")

    def rack_state(self, rack: str) -> str:
        return self.states.get(rack, "healthy")

    def fleet_state(self) -> str:
        """Worst state across every rack (or bare unit)."""
        top_level = [
            state for unit, state in self.states.items() if "/" not in unit
        ]
        if not top_level:
            return "healthy"
        return max(top_level, key=lambda state: SEVERITY[state])

    def counts(self) -> Dict[str, int]:
        """How many *leaf* units sit in each state right now."""
        out = {state: 0 for state in HEALTH_STATES}
        leaves = [unit for unit in self.states if self._is_leaf(unit)]
        for unit in leaves:
            out[self.states[unit]] += 1
        return out

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (the dashboard's health island)."""
        return {
            "fleet": self.fleet_state(),
            "counts": self.counts(),
            "units": {unit: self.states[unit] for unit in sorted(self.states)},
            "truncated": list(self.truncated_units),
            "timeline": [
                {
                    "t_s": tr.t_s,
                    "unit": tr.unit,
                    "state": tr.state,
                    "previous": tr.previous,
                    "detail": tr.detail,
                }
                for tr in self.timeline
            ],
        }

    # -- internals ----------------------------------------------------

    def _is_leaf(self, unit: str) -> bool:
        prefix = unit + "/"
        return not any(other.startswith(prefix) for other in self.states)

    def _set_state(
        self,
        unit: str,
        state: str,
        t_s: float,
        detail: str = "",
        terminal: bool = False,
    ) -> str:
        previous = self.states.get(unit, "healthy")
        if previous == "crashed" and not terminal:
            return previous  # crashed is terminal
        if state != previous:
            self.states[unit] = state
            self.timeline.append(
                HealthTransition(
                    t_s=t_s, unit=unit, state=state, previous=previous, detail=detail
                )
            )
        elif unit not in self.states:
            self.states[unit] = state
        if self.recorder is not None:
            self.recorder.record(f"health/{unit}", t_s, float(SEVERITY[state]))
        self._rollup(unit, t_s)
        return state

    def _rollup(self, unit: str, t_s: float) -> None:
        if "/" not in unit:
            return
        parent = unit.rsplit("/", 1)[0]
        prefix = parent + "/"
        children = [
            state for child, state in self.states.items() if child.startswith(prefix)
        ]
        worst = max(children, key=lambda state: SEVERITY[state])
        previous = self.states.get(parent, "healthy")
        if worst != previous:
            self.states[parent] = worst
            self.timeline.append(
                HealthTransition(
                    t_s=t_s,
                    unit=parent,
                    state=worst,
                    previous=previous,
                    detail="rollup",
                )
            )
        elif parent not in self.states:
            self.states[parent] = worst
        if self.recorder is not None:
            self.recorder.record(f"health/{parent}", t_s, float(SEVERITY[worst]))
        self._rollup(parent, t_s)
