"""Serialize recorded telemetry for external viewers.

Three formats, all deterministic for a given tracer/registry state:

* **Chrome ``trace_event`` JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Virtual seconds
  map to microseconds; each tracer track becomes its own named thread
  row via ``thread_name`` metadata events.
* **JSONL event log** — one JSON object per line, spans and instants
  interleaved in virtual-time order, for ``grep``/``jq`` forensics.
* **Prometheus text dump** — the registry's exposition format, written
  to a file for the ``--metrics-out`` CLI flag.
* **Series JSONL** — one JSON object per (series, window), sorted by
  series name then window index, for the ``--series-out`` flag.  This
  is the artifact the ``--workers`` byte-identity acceptance test
  compares, so the ordering and ``sort_keys`` are load-bearing.
* **Dashboard HTML** — the self-contained report from
  :mod:`repro.obs.dashboard`, for the ``--dashboard-out`` flag.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "write_metrics_text",
    "series_jsonl_lines",
    "write_series_jsonl",
    "write_dashboard_html",
]

#: All simulated activity is "one process" in the viewer.
_PID = 1


def _track_ids(tracer) -> Dict[str, int]:
    """Stable track → tid mapping: "main" first, the rest sorted."""
    names = {s.track for s in tracer.spans} | {e.track for e in tracer.events}
    ordered = (["main"] if "main" in names else []) + sorted(names - {"main"})
    return {name: tid for tid, name in enumerate(ordered, start=1)}


def chrome_trace(tracer) -> Dict[str, Any]:
    """The tracer's records as a Chrome ``trace_event`` document."""
    tids = _track_ids(tracer)
    events: List[Dict[str, Any]] = []
    for name, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for span in tracer.spans:
        event = {
            "ph": "X",
            "pid": _PID,
            "tid": tids[span.track],
            "name": span.name,
            "cat": span.category or "span",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
        }
        args = dict(span.args) if span.args else {}
        if span.status != "ok":
            args["status"] = span.status
        if args:
            event["args"] = args
        events.append(event)
    for instant in tracer.events:
        event = {
            "ph": "i",
            "pid": _PID,
            "tid": tids[instant.track],
            "name": instant.name,
            "cat": instant.category or "event",
            "ts": instant.ts_s * 1e6,
            "s": "t",
        }
        if instant.args:
            event["args"] = dict(instant.args)
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "dropped_records": tracer.dropped,
        },
    }


def write_chrome_trace(tracer, path: str) -> None:
    """Write :func:`chrome_trace` JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1, sort_keys=True)
        handle.write("\n")


def jsonl_lines(tracer) -> List[str]:
    """Spans and instants as JSON lines, sorted by virtual start time.

    Ties sort spans before instants, then by track and name, so the
    log is reproducible across runs.
    """
    records: List[Dict[str, Any]] = []
    for span in tracer.spans:
        records.append(
            {
                "type": "span",
                "name": span.name,
                "cat": span.category,
                "ts_s": span.start_s,
                "end_s": span.end_s,
                "dur_s": span.duration_s,
                "track": span.track,
                "status": span.status,
                "args": span.args,
            }
        )
    for instant in tracer.events:
        records.append(
            {
                "type": "event",
                "name": instant.name,
                "cat": instant.category,
                "ts_s": instant.ts_s,
                "track": instant.track,
                "args": instant.args,
            }
        )
    records.sort(
        key=lambda r: (r["ts_s"], 0 if r["type"] == "span" else 1, r["track"], r["name"])
    )
    return [json.dumps(record, sort_keys=True) for record in records]


def write_jsonl(tracer, path: str) -> None:
    """Write :func:`jsonl_lines` to ``path``, one record per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(tracer):
            handle.write(line)
            handle.write("\n")


def write_metrics_text(registry, path: str) -> None:
    """Write the registry's Prometheus text dump to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.render_prometheus())


def series_jsonl_lines(recorder) -> List[str]:
    """Every recorded window as one JSON line.

    Lines are sorted by series name, then window index; each carries
    the window start time and the window aggregate, so ``jq`` can
    reconstruct any series without extra state.  Byte-identical for
    identical recorder contents (the ``--workers`` parity guarantee).
    """
    lines: List[str] = []
    for name in recorder.names():
        series = recorder.get(name)
        for index in series.window_indexes():
            window = series.windows[index]
            record: Dict[str, Any] = {
                "series": name,
                "kind": series.kind,
                "window": index,
                "t_s": series.window_start_s(index),
                "interval_s": series.interval_s,
            }
            if series.kind == "value":
                record.update(
                    count=window.count,
                    sum=window.sum,
                    min=window.min,
                    max=window.max,
                    last=window.last,
                )
            else:
                record.update(
                    count=window.count,
                    sum=window.sum,
                    counts=list(window.counts),
                )
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_series_jsonl(recorder, path: str) -> None:
    """Write :func:`series_jsonl_lines` to ``path``, one per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in series_jsonl_lines(recorder):
            handle.write(line)
            handle.write("\n")


def write_dashboard_html(
    recorder,
    path: str,
    slo_report=None,
    health=None,
    attack_windows=None,
    title: str = "campaign dashboard",
) -> None:
    """Render and write the standalone dashboard report."""
    from .dashboard import render_dashboard_html

    html_text = render_dashboard_html(
        recorder,
        slo_report=slo_report,
        health=health,
        attack_windows=attack_windows,
        title=title,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(html_text)
