"""Span-based tracing on the virtual clock.

The paper's evidence is a *timeline*: dmesg error chains, FIO latency
tails, and time-to-crash numbers all describe when things happened on
the victim's clock.  :class:`Tracer` records that timeline explicitly —
completed spans (attack points, drive commands, journal commits, WAL
syncs, compactions) and instant events (retries, aborts, kernel log
lines), every one stamped with **virtual** seconds from the component's
own :class:`~repro.sim.clock.VirtualClock`.

Tracing is opt-in.  When no telemetry is installed components skip the
recorder entirely (a single ``is not None`` check), and
:data:`NULL_TRACER` gives callers that want an always-valid tracer a
recorder whose every method is a no-op — the hot paths of PR 2 stay
bit-identical and within their wall-time budget with telemetry off.

Spans carry a ``track`` label (a Perfetto thread row).  Components
record against the tracer's *current* track, which campaign code sets
with :meth:`Tracer.track` around each sweep/range point, so every
point's rig gets its own labelled row in the exported trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError

__all__ = ["SpanRecord", "EventRecord", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed operation on the virtual timeline."""

    name: str
    category: str
    start_s: float
    end_s: float
    track: str
    status: str = "ok"
    args: Optional[Dict[str, Any]] = None

    @property
    def duration_s(self) -> float:
        """Virtual seconds the operation took."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class EventRecord:
    """One instant on the virtual timeline (a point, not a range)."""

    name: str
    category: str
    ts_s: float
    track: str
    args: Optional[Dict[str, Any]] = None


class Tracer:
    """Records spans and instant events, bounded, snapshot/mergeable.

    Args:
        max_records: cap on spans + events kept; beyond it new records
            are dropped (counted in :attr:`dropped`), mirroring the
            dmesg ring's overflow discipline.
        detail: ``"commands"`` records one span per drive command;
            ``"attempts"`` additionally records every media attempt
            (seek + settle + transfer or retry revolution) as its own
            span — much bigger traces, per-revolution resolution.
    """

    enabled = True

    def __init__(self, max_records: int = 1_000_000, detail: str = "commands") -> None:
        if max_records <= 0:
            raise ConfigurationError(f"max_records must be positive: {max_records}")
        if detail not in ("commands", "attempts"):
            raise ConfigurationError(f"unknown trace detail {detail!r}")
        self.max_records = max_records
        self.detail = detail
        # Hot-path storage: spans/events are kept as plain slot tuples in
        # SpanRecord/EventRecord field order — appending a tuple is several
        # times cheaper than constructing a frozen dataclass per drive
        # command, which BENCH_PR6 measured as ~12x traced overhead.  The
        # record views below materialize dataclasses on demand (and cache
        # them: the buffers are append-only, so a length check suffices).
        self._spans: List[tuple] = []
        self._events: List[tuple] = []
        self._span_view: Optional[List[SpanRecord]] = None
        self._event_view: Optional[List[EventRecord]] = None
        self.dropped = 0
        self._track_stack: List[str] = []

    @property
    def spans(self) -> List[SpanRecord]:
        """Completed spans as :class:`SpanRecord` objects (read-only view)."""
        view = self._span_view
        if view is None or len(view) != len(self._spans):
            view = [SpanRecord(*row) for row in self._spans]
            self._span_view = view
        return view

    @property
    def events(self) -> List[EventRecord]:
        """Instant events as :class:`EventRecord` objects (read-only view)."""
        view = self._event_view
        if view is None or len(view) != len(self._events):
            view = [EventRecord(*row) for row in self._events]
            self._event_view = view
        return view

    # -- tracks --------------------------------------------------------------

    @property
    def current_track(self) -> str:
        """The track new records land on (default ``"main"``)."""
        return self._track_stack[-1] if self._track_stack else "main"

    @contextmanager
    def track(self, name: str) -> Iterator[None]:
        """Route records inside the block onto track ``name``."""
        self._track_stack.append(name)
        try:
            yield
        finally:
            self._track_stack.pop()

    # -- recording -----------------------------------------------------------

    def _full(self) -> bool:
        if len(self._spans) + len(self._events) >= self.max_records:
            self.dropped += 1
            return True
        return False

    def record(
        self,
        name: str,
        start_s: float,
        end_s: float,
        category: str = "",
        status: str = "ok",
        args: Optional[Dict[str, Any]] = None,
        track: Optional[str] = None,
    ) -> None:
        """Append an already-completed span (the cheap hot-path form)."""
        spans = self._spans
        if len(spans) + len(self._events) >= self.max_records:
            self.dropped += 1
            return
        if track is None:
            stack = self._track_stack
            track = stack[-1] if stack else "main"
        spans.append((name, category, start_s, end_s, track, status, args))

    @contextmanager
    def span(
        self,
        name: str,
        clock,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        """Record a span around the block, stamped by ``clock.now``.

        An exception escaping the block marks the span ``status="error"``
        (and still re-raises) — failed journal commits and WAL syncs
        show up red in the trace viewer.
        """
        start = clock.now
        try:
            yield
        except BaseException:
            self.record(name, start, clock.now, category=category, status="error", args=args)
            raise
        self.record(name, start, clock.now, category=category, args=args)

    def instant(
        self,
        name: str,
        ts_s: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
        track: Optional[str] = None,
    ) -> None:
        """Append an instant event at virtual time ``ts_s``."""
        if self._full():
            return
        if track is None:
            stack = self._track_stack
            track = stack[-1] if stack else "main"
        self._events.append((name, category, ts_s, track, args))

    def ingest_dmesg(self, buffer, track: str = "dmesg") -> int:
        """Copy a :class:`~repro.storage.oskernel.dmesg.DmesgBuffer`'s
        entries in as instant events; returns how many were ingested.

        Uses the buffer's :meth:`to_events` export so kernel log lines
        carry their virtual-clock timestamps (and the ring's eviction
        marker) into the trace.
        """
        ingested = 0
        for event in buffer.to_events():
            self.instant(
                event["name"],
                event["ts_s"],
                category=event.get("category", "dmesg"),
                args=event.get("args"),
                track=track,
            )
            ingested += 1
        return ingested

    # -- transport (worker processes) ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of everything recorded (for worker transport).

        The internal tuples already hold the snapshot's field order, so
        this is a plain list copy — no attribute walks.
        """
        return {
            "spans": [list(row) for row in self._spans],
            "events": [list(row) for row in self._events],
            "dropped": self.dropped,
        }

    def ingest(self, snapshot: Dict[str, Any], track_prefix: str = "") -> None:
        """Merge a :meth:`snapshot` from another tracer (append order)."""
        for name, category, start_s, end_s, track, status, args in snapshot["spans"]:
            self.record(
                name,
                start_s,
                end_s,
                category=category,
                status=status,
                args=args,
                track=track_prefix + track,
            )
        for name, category, ts_s, track, args in snapshot["events"]:
            self.instant(
                name, ts_s, category=category, args=args, track=track_prefix + track
            )
        self.dropped += snapshot.get("dropped", 0)

    # -- introspection -------------------------------------------------------

    def find_spans(self, name: str, track: Optional[str] = None) -> List[SpanRecord]:
        """Spans with the given name (optionally on one track)."""
        return [
            SpanRecord(*row)
            for row in self._spans
            if row[0] == name and (track is None or row[4] == track)
        ]

    def __len__(self) -> int:
        return len(self._spans) + len(self._events)


class NullTracer:
    """A recorder whose every method is a no-op.

    Shares the :class:`Tracer` surface so code holding "a tracer" never
    needs an enabled check; the shared :data:`NULL_TRACER` instance is
    what :func:`repro.obs.tracer` hands out while telemetry is off.
    """

    enabled = False
    detail = "commands"
    dropped = 0
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    current_track = "main"

    _NOOP_CM = None  # filled in below; one shared reusable context manager

    def record(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def ingest_dmesg(self, buffer, track: str = "dmesg") -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"spans": [], "events": [], "dropped": 0}

    def ingest(self, snapshot: Dict[str, Any], track_prefix: str = "") -> None:
        pass

    def find_spans(self, name: str, track: Optional[str] = None) -> List[SpanRecord]:
        return []

    def track(self, name: str):
        return _NOOP_CONTEXT

    def span(self, name: str, clock, category: str = "", args=None):
        return _NOOP_CONTEXT

    def __len__(self) -> int:
        return 0


class _NoopContext:
    """A reusable, reentrant do-nothing context manager."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_CONTEXT = _NoopContext()

#: The shared disabled recorder.
NULL_TRACER = NullTracer()
