"""Deterministic virtual-clock time series.

PR 3's registry answers "how many, in total"; the fleet/SLO roadmap
items need "how much, *when*" — throughput collapse during an attack
window, p99 latency per minute, recovery curves.  This module records
that shape: named series of **fixed-interval windows** on the virtual
clock, each window a small aggregate (count/sum/min/max/last for value
series, fixed-bucket counts for histogram series).

The same discipline as :mod:`repro.obs.metrics` applies:

* **deterministic** — windows live in plain dicts keyed by integer
  window index; snapshots list series and windows in sorted order, so
  two identical runs dump byte-identical JSONL;
* **mergeable** — :meth:`SeriesRecorder.snapshot` /
  :meth:`SeriesRecorder.merge` move windowed aggregates across process
  boundaries.  :class:`~repro.runtime.runner.SweepRunner` merges
  per-point snapshots back in spec-index order, so the folded window
  sums add the same floats in the same order at any worker count —
  float-identical, the PR 3 worker-merge guarantee extended to series;
* **bounded** — each series keeps at most ``max_windows`` windows; when
  a newer window would exceed that, the oldest is evicted and counted
  in ``dropped_windows`` (the dmesg-ring overflow discipline).

A window's index is ``floor(t / interval)``; a sample landing exactly
on a boundary ``k * interval`` belongs to window ``k`` (closed left
edge, open right edge) — pinned by the boundary-correlation tests.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

from .metrics import DEFAULT_LATENCY_BUCKETS_S, MetricsRegistry

__all__ = [
    "ValueWindow",
    "HistWindow",
    "TimeSeries",
    "SeriesRecorder",
    "MetricsSampler",
    "DEFAULT_WINDOW_S",
    "DEFAULT_MAX_WINDOWS",
]

#: Default window width (virtual seconds).  One second resolves the
#: paper's second-scale crash/recovery stories without blowing up a
#: multi-minute serving run.
DEFAULT_WINDOW_S = 1.0

#: Default per-series ring bound: a day of one-second windows would not
#: fit a campaign report anyway; 4096 covers every simulated scenario
#: in the repo with margin.
DEFAULT_MAX_WINDOWS = 4096

_KINDS = ("value", "hist")


class ValueWindow:
    """Aggregate of the samples that landed in one value-series window."""

    __slots__ = ("count", "sum", "min", "max", "last")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    def combine(self, payload: List[float]) -> None:
        """Fold a snapshot row in (count/sum add, min/max widen,
        last takes the incoming value — merge order is the runner's
        deterministic spec order, so "last writer" is well defined)."""
        count, total, low, high, last = payload
        self.count += int(count)
        self.sum += total
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        self.last = last

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def payload(self) -> List[float]:
        return [self.count, self.sum, self.min, self.max, self.last]


class HistWindow:
    """Fixed-bucket counts for one histogram-series window."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_bounds: int) -> None:
        self.counts = [0] * (n_bounds + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, bounds: Tuple[float, ...], value: float) -> None:
        self.counts[bisect_left(bounds, value)] += 1
        self.sum += value
        self.count += 1

    def combine(self, payload: List[Any]) -> None:
        counts, total, count = payload
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"cannot merge {len(counts)} histogram buckets into "
                f"{len(self.counts)}"
            )
        for index, bucket in enumerate(counts):
            self.counts[index] += bucket
        self.sum += total
        self.count += int(count)

    def percentile(self, bounds: Tuple[float, ...], pct: float) -> float:
        """Upper bound of the bucket holding the requested rank
        (``math.inf`` for ranks in the overflow bucket, 0.0 when
        empty) — the same contract as :meth:`Histogram.percentile`."""
        if not 0.0 <= pct <= 100.0:
            raise ConfigurationError(f"percentile out of range: {pct}")
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if index == len(bounds):
                    return math.inf
                return bounds[index]
        return bounds[-1]

    def payload(self) -> List[Any]:
        return [list(self.counts), self.sum, self.count]


class TimeSeries:
    """One named series of fixed-interval windows on the virtual clock."""

    __slots__ = ("name", "kind", "interval_s", "max_windows", "bounds",
                 "windows", "dropped_windows")

    def __init__(
        self,
        name: str,
        kind: str = "value",
        interval_s: float = DEFAULT_WINDOW_S,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        bounds: Optional[Iterable[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown series kind {kind!r}")
        if interval_s <= 0.0:
            raise ConfigurationError(f"window interval must be positive: {interval_s}")
        if max_windows < 1:
            raise ConfigurationError(f"max_windows must be >= 1: {max_windows}")
        self.name = name
        self.kind = kind
        self.interval_s = float(interval_s)
        self.max_windows = max_windows
        self.bounds: Tuple[float, ...] = tuple(
            float(b) for b in (bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS_S)
        )
        self.windows: Dict[int, Any] = {}
        self.dropped_windows = 0

    # -- recording -----------------------------------------------------------

    def window_index(self, t_s: float) -> int:
        """Window holding virtual time ``t_s`` (closed left edge)."""
        return int(t_s // self.interval_s)

    def _window(self, index: int):
        window = self.windows.get(index)
        if window is None:
            window = (
                ValueWindow() if self.kind == "value" else HistWindow(len(self.bounds))
            )
            self.windows[index] = window
            if len(self.windows) > self.max_windows:
                self._evict_oldest()
        return window

    def _evict_oldest(self) -> None:
        oldest = min(self.windows)
        del self.windows[oldest]
        self.dropped_windows += 1

    def record(self, t_s: float, value: float) -> None:
        """Add one sample to the window containing ``t_s``."""
        if self.kind != "value":
            raise ConfigurationError(f"series {self.name!r} is a histogram; use observe()")
        self._window(self.window_index(t_s)).add(value)

    def observe(self, t_s: float, value: float) -> None:
        """Add one observation to the histogram window containing ``t_s``."""
        if self.kind != "hist":
            raise ConfigurationError(f"series {self.name!r} is a value series; use record()")
        self._window(self.window_index(t_s)).observe(self.bounds, value)

    # -- reads ---------------------------------------------------------------

    def window_indexes(self) -> List[int]:
        """Populated window indexes, ascending."""
        return sorted(self.windows)

    def window_start_s(self, index: int) -> float:
        return index * self.interval_s

    def value_at(self, index: int, stat: str = "mean") -> float:
        """One window's stat (``mean``/``sum``/``count``/``min``/``max``/``last``)."""
        window = self.windows.get(index)
        if window is None:
            return 0.0
        if self.kind == "hist":
            if stat == "count":
                return float(window.count)
            if stat == "sum":
                return window.sum
            return window.sum / window.count if window.count else 0.0
        return getattr(window, stat) if stat != "mean" else window.mean

    def __len__(self) -> int:
        return len(self.windows)

    # -- transport -----------------------------------------------------------

    def spec(self) -> List[Any]:
        spec = [self.name, self.kind, self.interval_s, self.max_windows]
        if self.kind == "hist":
            spec.append(list(self.bounds))
        return spec

    def snapshot_windows(self) -> List[List[Any]]:
        return [
            [index] + self.windows[index].payload() for index in sorted(self.windows)
        ]


class SeriesRecorder:
    """Named time series, get-or-create, snapshot/mergeable as a set."""

    def __init__(
        self,
        interval_s: float = DEFAULT_WINDOW_S,
        max_windows: int = DEFAULT_MAX_WINDOWS,
    ) -> None:
        if interval_s <= 0.0:
            raise ConfigurationError(f"window interval must be positive: {interval_s}")
        self.interval_s = float(interval_s)
        self.max_windows = max_windows
        self._series: Dict[str, TimeSeries] = {}

    # -- access --------------------------------------------------------------

    def series(
        self,
        name: str,
        kind: str = "value",
        interval_s: Optional[float] = None,
        bounds: Optional[Iterable[float]] = None,
    ) -> TimeSeries:
        """The series for ``name``, created on first use.

        Creation parameters only apply on first use; a later lookup with
        a conflicting kind raises (mis-typed recording would silently
        corrupt aggregates).
        """
        existing = self._series.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ConfigurationError(
                    f"series {name!r} already exists with kind {existing.kind!r}"
                )
            return existing
        created = TimeSeries(
            name,
            kind=kind,
            interval_s=interval_s if interval_s is not None else self.interval_s,
            max_windows=self.max_windows,
            bounds=bounds,
        )
        self._series[name] = created
        return created

    def get(self, name: str) -> Optional[TimeSeries]:
        """The series, or None when nothing was ever recorded under it."""
        return self._series.get(name)

    def record(self, name: str, t_s: float, value: float) -> None:
        """Add one sample to value series ``name`` at virtual ``t_s``."""
        self.series(name).record(t_s, value)

    def observe(self, name: str, t_s: float, value: float) -> None:
        """Add one observation to histogram series ``name`` at ``t_s``."""
        self.series(name, kind="hist").observe(t_s, value)

    def names(self) -> List[str]:
        """Every recorded series name, sorted."""
        return sorted(self._series)

    def span_s(self) -> Tuple[float, float]:
        """(earliest window start, latest window end) across all series."""
        starts: List[float] = []
        ends: List[float] = []
        for series in self._series.values():
            if series.windows:
                indexes = series.window_indexes()
                starts.append(indexes[0] * series.interval_s)
                ends.append((indexes[-1] + 1) * series.interval_s)
        if not starts:
            return 0.0, 0.0
        return min(starts), max(ends)

    def __len__(self) -> int:
        return len(self._series)

    # -- transport -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every series (sorted, deterministic)."""
        return {
            "series": [
                {
                    "spec": series.spec(),
                    "windows": series.snapshot_windows(),
                    "dropped": series.dropped_windows,
                }
                for _name, series in sorted(self._series.items())
            ]
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` in, series by series, windows in
        ascending index order (so eviction and float addition replay the
        same way at any worker count)."""
        for entry in snapshot.get("series", []):
            spec = entry["spec"]
            name, kind, interval_s, max_windows = spec[0], spec[1], spec[2], spec[3]
            bounds = spec[4] if len(spec) > 4 else None
            series = self.series(name, kind=kind, interval_s=interval_s, bounds=bounds)
            if series.interval_s != interval_s:
                raise ConfigurationError(
                    f"series {name!r}: cannot merge interval {interval_s} "
                    f"into {series.interval_s}"
                )
            for row in sorted(entry["windows"], key=lambda r: r[0]):
                series._window(int(row[0])).combine(row[1:])
            series.dropped_windows += entry.get("dropped", 0)


class MetricsSampler:
    """Samples a :class:`MetricsRegistry` into time series.

    Gauges sample as their current level; counters and histograms
    sample as **deltas since the previous sample** (a rate series once
    divided by the window).  Call :meth:`sample` on a fixed virtual-time
    cadence — the monitor and service loops do — and the registry's
    instantaneous state becomes a timeline.
    """

    def __init__(self, recorder: SeriesRecorder, registry: MetricsRegistry) -> None:
        self.recorder = recorder
        self.registry = registry
        self._last_counters: Dict[str, int] = {}
        self._last_hist: Dict[str, Tuple[int, float]] = {}

    @staticmethod
    def _flat_name(name: str, labels: List[List[str]]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def sample(self, t_s: float) -> int:
        """Record one sample of every instrument at virtual ``t_s``;
        returns how many series were touched."""
        touched = 0
        snapshot = self.registry.snapshot()
        for name, labels, value in snapshot["gauges"]:
            self.recorder.record(f"gauge/{self._flat_name(name, labels)}", t_s, value)
            touched += 1
        for name, labels, value in snapshot["counters"]:
            flat = self._flat_name(name, labels)
            delta = value - self._last_counters.get(flat, 0)
            self._last_counters[flat] = value
            self.recorder.record(f"rate/{flat}", t_s, float(delta))
            touched += 1
        for name, labels, _bounds, _counts, total, count in snapshot["histograms"]:
            flat = self._flat_name(name, labels)
            last_count, last_sum = self._last_hist.get(flat, (0, 0.0))
            self._last_hist[flat] = (count, total)
            self.recorder.record(f"rate/{flat}_count", t_s, float(count - last_count))
            self.recorder.record(f"rate/{flat}_sum", t_s, total - last_sum)
            touched += 2
        return touched
