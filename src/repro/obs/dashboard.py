"""Self-contained campaign dashboard: static HTML + terminal sparklines.

The HTML report is a single file with zero external dependencies: the
data rides in a ``<script type="application/json" id="dashboard-data">``
island and a small inline script draws series timelines (SVG polylines),
attack-window shading, the SLO table, and the fleet-health heatmap.
``tools/validate_trace.py`` parses the island back out to validate it,
so keep the id and script-type stable.

The terminal path (:func:`render_text_summary`) renders each series as
a unicode sparkline — enough to eyeball "p99 rose during the attack
window" without leaving the shell.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .timeseries import SeriesRecorder

__all__ = [
    "DATA_ISLAND_ID",
    "dashboard_payload",
    "render_dashboard_html",
    "sparkline",
    "render_text_summary",
]

DATA_ISLAND_ID = "dashboard-data"

_SPARK_BARS = "▁▂▃▄▅▆▇█"


def _series_points(recorder: SeriesRecorder) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for name in recorder.names():
        series = recorder.get(name)
        points: List[List[float]] = []
        if series.kind == "value":
            for index in series.window_indexes():
                points.append(
                    [series.window_start_s(index), series.value_at(index, "sum")]
                )
        else:
            for index in series.window_indexes():
                p99 = series.windows[index].percentile(series.bounds, 99.0)
                points.append(
                    [
                        series.window_start_s(index),
                        -1.0 if math.isinf(p99) else p99,
                    ]
                )
        out.append(
            {
                "name": name,
                "kind": series.kind,
                "interval_s": series.interval_s,
                "dropped_windows": series.dropped_windows,
                "points": points,
            }
        )
    return out


def dashboard_payload(
    recorder: SeriesRecorder,
    slo_report=None,
    health=None,
    attack_windows: Optional[Sequence[Tuple[float, Optional[float]]]] = None,
    title: str = "campaign dashboard",
) -> Dict[str, Any]:
    """The JSON island: everything the inline renderer needs.

    ``slo_report`` is a :class:`~repro.obs.slo.SloReport` (or None),
    ``health`` a :class:`~repro.obs.health.HealthTracker` (or None).
    Histogram series contribute their windowed p99 (−1 encodes an
    overflow-bucket / infinite percentile so the JSON stays finite).
    """
    start_s, end_s = recorder.span_s()
    windows: List[Dict[str, Any]] = []
    for window in attack_windows or []:
        start, end = window
        windows.append({"start_s": start, "end_s": end})
    return {
        "title": title,
        "span_s": [start_s, end_s],
        "series": _series_points(recorder),
        "slo": slo_report.to_payload() if slo_report is not None else None,
        "health": health.to_payload() if health is not None else None,
        "attack_windows": windows,
    }


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em auto; max-width: 980px;
       color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
.series { margin-bottom: 1.2em; }
.series svg { background: #fff; border: 1px solid #ddd; border-radius: 4px; }
.series .name { font-family: ui-monospace, monospace; font-size: 12px; color: #444; }
table { border-collapse: collapse; font-size: 12px; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; } td.bad { background: #fdd; }
.heatmap span { display: inline-block; width: 26px; height: 18px; margin: 1px;
                border-radius: 3px; font-size: 9px; text-align: center;
                line-height: 18px; color: #fff; vertical-align: middle; }
.healthy { background: #2e8b57; } .degraded { background: #d99a1b; }
.stalled { background: #c0572e; } .crashed { background: #8b1a1a; }
.note { color: #666; font-size: 12px; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="root"><noscript>Enable JavaScript to render the dashboard; the raw
data lives in the JSON island below.</noscript></div>
<script type="application/json" id="dashboard-data">__DATA__</script>
<script>
(function () {
  "use strict";
  var data = JSON.parse(document.getElementById("dashboard-data").textContent);
  var root = document.getElementById("root");
  var W = 900, H = 90, PAD = 4;
  var span = data.span_s || [0, 1];
  var spanLen = Math.max(1e-9, span[1] - span[0]);

  function el(tag, attrs, parent) {
    var ns = tag === "svg" || tag === "polyline" || tag === "rect" || tag === "line"
      ? document.createElementNS("http://www.w3.org/2000/svg", tag)
      : document.createElement(tag);
    for (var k in (attrs || {})) { ns.setAttribute(k, attrs[k]); }
    if (parent) { parent.appendChild(ns); }
    return ns;
  }
  function x(t) { return PAD + (W - 2 * PAD) * (t - span[0]) / spanLen; }

  function drawSeries(s) {
    var div = el("div", { "class": "series" }, root);
    var label = el("div", { "class": "name" }, div);
    label.textContent = s.name + (s.kind === "hist" ? " (windowed p99, s)" : "") +
      (s.dropped_windows ? "  [" + s.dropped_windows + " windows dropped]" : "");
    var svg = el("svg", { width: W, height: H }, div);
    (data.attack_windows || []).forEach(function (w) {
      var endS = w.end_s === null ? span[1] : w.end_s;
      el("rect", { x: x(w.start_s), y: 0, width: Math.max(1, x(endS) - x(w.start_s)),
                   height: H, fill: "#e2574c", opacity: 0.15 }, svg);
    });
    var vals = s.points.map(function (p) { return p[1]; });
    var lo = Math.min.apply(null, vals.concat([0]));
    var hi = Math.max.apply(null, vals.concat([lo + 1e-12]));
    var pts = s.points.map(function (p) {
      var yy = H - PAD - (H - 2 * PAD) * (p[1] - lo) / (hi - lo);
      return x(p[0]).toFixed(1) + "," + yy.toFixed(1);
    }).join(" ");
    el("polyline", { points: pts, fill: "none", stroke: "#30507a",
                     "stroke-width": 1.5 }, svg);
  }

  function drawSlo(slo) {
    var h2 = el("h2", {}, root); h2.textContent = "SLO";
    var note = el("div", { "class": "note" }, root);
    note.textContent = "objectives: " + slo.objectives.join(", ") +
      " — violation minutes: " + slo.violation_minutes.toFixed(3) +
      (slo.error_budget_burn !== null
        ? " — error-budget burn: " + slo.error_budget_burn.toFixed(2) + "x" : "");
    var table = el("table", {}, root);
    var head = el("tr", {}, table);
    ["t (s)", "ops", "errors", "avail %", "p50 (ms)", "p99 (ms)", "violated"]
      .forEach(function (t) { var th = el("th", {}, head); th.textContent = t; });
    slo.windows.forEach(function (w) {
      var tr = el("tr", {}, table);
      function td(text, bad) {
        var c = el("td", bad ? { "class": "bad" } : {}, tr);
        c.textContent = text;
      }
      function ms(v) { return v === null ? "inf" : (v * 1e3).toFixed(2); }
      td(w.t_s.toFixed(1)); td(w.ops); td(w.errors);
      td(w.avail_pct.toFixed(3)); td(ms(w.latency.p50)); td(ms(w.latency.p99));
      td(w.violated.join(", "), w.violated.length > 0);
    });
    (slo.attack_windows || []).forEach(function (a) {
      var p = el("div", { "class": "note" }, root);
      p.textContent = "attack " + a.start_s.toFixed(1) + "-" + a.end_s.toFixed(1) +
        "s: degraded " + a.degraded_s.toFixed(1) + "s, time-to-recover " +
        (a.time_to_recover_s === null ? "never" : a.time_to_recover_s.toFixed(1) + "s");
    });
  }

  function drawHealth(health) {
    var h2 = el("h2", {}, root); h2.textContent = "Fleet health: " + health.fleet;
    var map = el("div", { "class": "heatmap" }, root);
    Object.keys(health.units).forEach(function (unit) {
      var cell = el("span", { "class": health.units[unit], title: unit }, map);
      cell.textContent = unit.split("/").pop().replace("bay", "");
    });
    if (health.truncated && health.truncated.length) {
      var note = el("div", { "class": "note" }, root);
      note.textContent = "watch truncated (step budget exhausted): " +
        health.truncated.join(", ");
    }
  }

  (data.series || []).forEach(drawSeries);
  if (data.slo) { drawSlo(data.slo); }
  if (data.health) { drawHealth(data.health); }
})();
</script>
</body>
</html>
"""


def render_dashboard_html(
    recorder: SeriesRecorder,
    slo_report=None,
    health=None,
    attack_windows: Optional[Sequence[Tuple[float, Optional[float]]]] = None,
    title: str = "campaign dashboard",
) -> str:
    """Render the full standalone HTML report."""
    payload = dashboard_payload(
        recorder,
        slo_report=slo_report,
        health=health,
        attack_windows=attack_windows,
        title=title,
    )
    # "</script" inside a script element would terminate the island early;
    # escape the slash (valid JSON, invisible to JSON.parse).
    data = json.dumps(payload, sort_keys=True).replace("</", "<\\/")
    return _HTML_TEMPLATE.replace("__TITLE__", html.escape(title)).replace(
        "__DATA__", data
    )


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a unicode sparkline, downsampled to ``width``."""
    finite = [v for v in values if not math.isinf(v) and not math.isnan(v)]
    if not finite:
        return ""
    if len(finite) > width:
        step = len(finite) / width
        finite = [finite[int(i * step)] for i in range(width)]
    lo, hi = min(finite), max(finite)
    spread = hi - lo
    if spread <= 0.0:
        return _SPARK_BARS[0] * len(finite)
    return "".join(
        _SPARK_BARS[min(len(_SPARK_BARS) - 1, int((v - lo) / spread * len(_SPARK_BARS)))]
        for v in finite
    )


def render_text_summary(
    recorder: SeriesRecorder, slo_report=None, health=None
) -> str:
    """Terminal summary: one sparkline per series, plus SLO and health."""
    lines: List[str] = []
    for entry in _series_points(recorder):
        values = [p[1] for p in entry["points"]]
        spark = sparkline(values)
        if not spark:
            continue
        suffix = " (p99)" if entry["kind"] == "hist" else ""
        lines.append(f"  {entry['name']}{suffix}: {spark}")
    if lines:
        lines.insert(0, "Series")
    if slo_report is not None:
        if lines:
            lines.append("")
        lines.append(slo_report.render())
    if health is not None:
        if lines:
            lines.append("")
        counts = health.counts()
        summary = ", ".join(
            f"{state}={counts[state]}" for state in counts if counts[state]
        )
        lines.append(f"Fleet health: {health.fleet_state()} ({summary or 'no units'})")
        if health.truncated_units:
            lines.append(
                "  watch truncated (step budget): " + ", ".join(health.truncated_units)
            )
    return "\n".join(lines)
