"""``repro.obs`` — the unified telemetry layer.

One subsystem for everything the repro can observe about itself:

* :mod:`~repro.obs.trace` — virtual-clock span tracing (plus the
  zero-overhead :data:`NULL_TRACER` for the disabled path);
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with deterministic snapshot/merge for worker fan-out;
* :mod:`~repro.obs.telemetry` — the installable process-wide bundle
  components capture at construction;
* :mod:`~repro.obs.exporters` — Chrome ``trace_event`` JSON (Perfetto),
  JSONL event logs, Prometheus text dumps;
* :mod:`~repro.obs.incident` — the correlated crash-story report.

Quick start::

    from repro import obs

    with obs.session() as tel:
        result = run_table3(seed=7)
    obs.write_chrome_trace(tel.tracer, "table3-trace.json")
"""

from .exporters import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
    write_metrics_text,
)
from .incident import build_incident_report
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .telemetry import Telemetry, enabled, get, install, session, tracer
from .trace import NULL_TRACER, EventRecord, NullTracer, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "EventRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Telemetry",
    "get",
    "install",
    "enabled",
    "tracer",
    "session",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "write_metrics_text",
    "build_incident_report",
]
