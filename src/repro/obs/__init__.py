"""``repro.obs`` — the unified telemetry layer.

One subsystem for everything the repro can observe about itself:

* :mod:`~repro.obs.trace` — virtual-clock span tracing (plus the
  zero-overhead :data:`NULL_TRACER` for the disabled path);
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with deterministic snapshot/merge for worker fan-out;
* :mod:`~repro.obs.timeseries` — fixed-interval windowed series on the
  virtual clock (throughput, latency, health over *time*), same
  snapshot/merge discipline;
* :mod:`~repro.obs.slo` — windowed SLO accounting: p50/p99/p999,
  availability, error-budget burn, violation minutes, time-to-recover
  per attack window;
* :mod:`~repro.obs.health` — bay → rack → fleet health rollups;
* :mod:`~repro.obs.telemetry` — the installable process-wide bundle
  components capture at construction;
* :mod:`~repro.obs.exporters` — Chrome ``trace_event`` JSON (Perfetto),
  JSONL event logs, Prometheus text dumps, series JSONL, and the
  self-contained HTML dashboard;
* :mod:`~repro.obs.dashboard` — the dashboard renderer itself (HTML +
  terminal sparklines);
* :mod:`~repro.obs.incident` — the correlated crash-story report.

Quick start::

    from repro import obs

    with obs.session() as tel:
        result = run_table3(seed=7)
    obs.write_chrome_trace(tel.tracer, "table3-trace.json")
"""

from .dashboard import (
    dashboard_payload,
    render_dashboard_html,
    render_text_summary,
    sparkline,
)
from .exporters import (
    chrome_trace,
    jsonl_lines,
    series_jsonl_lines,
    write_chrome_trace,
    write_dashboard_html,
    write_jsonl,
    write_metrics_text,
    write_series_jsonl,
)
from .health import HEALTH_STATES, HealthTracker, classify_probability
from .incident import build_incident_report
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slo import (
    SloObjective,
    SloReport,
    attack_windows_from_tracer,
    evaluate_slo,
    parse_slo,
)
from .telemetry import Telemetry, enabled, get, install, session, tracer
from .timeseries import MetricsSampler, SeriesRecorder, TimeSeries
from .trace import NULL_TRACER, EventRecord, NullTracer, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "EventRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "TimeSeries",
    "SeriesRecorder",
    "MetricsSampler",
    "SloObjective",
    "SloReport",
    "parse_slo",
    "evaluate_slo",
    "attack_windows_from_tracer",
    "HealthTracker",
    "HEALTH_STATES",
    "classify_probability",
    "Telemetry",
    "get",
    "install",
    "enabled",
    "tracer",
    "session",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "write_metrics_text",
    "series_jsonl_lines",
    "write_series_jsonl",
    "write_dashboard_html",
    "dashboard_payload",
    "render_dashboard_html",
    "render_text_summary",
    "sparkline",
    "build_incident_report",
]
