"""SLO accounting over virtual-time series.

The paper's claim is about *availability*; a production operator would
state it as a service-level objective — "p99 under 5 ms, availability
at least 99.9%" — and account for it per time window: which minutes
violated, how fast the error budget burned, how long after the attack
stopped before the service met its objectives again.
:func:`evaluate_slo` computes exactly that from a
:class:`~repro.obs.timeseries.SeriesRecorder`.

Spec grammar (the CLI's ``--slo``)::

    SPEC      := OBJECTIVE ("," OBJECTIVE)*
    OBJECTIVE := METRIC OP VALUE [UNIT]
    METRIC    := "p50" | "p95" | "p99" | "p999" | "avail"
    OP        := "<" | "<=" | ">" | ">="
    UNIT      := "us" | "ms" | "s"       (latency metrics only)

``p99<5ms`` bounds windowed 99th-percentile latency; ``avail>=99.9``
bounds windowed availability (ok / (ok + error) operations) in percent.
Latency thresholds are stored in seconds.

Attack windows — ``(start_s, end_s)`` pairs, usually recovered from the
tracer's ``attack.on`` / ``attack.off`` instants via
:func:`attack_windows_from_tracer` — annotate the report with per-window
degraded time and time-to-recover, the Princeton acoustic-DoS framing.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

from .timeseries import SeriesRecorder, TimeSeries

__all__ = [
    "SloObjective",
    "parse_slo",
    "WindowEval",
    "AttackWindowStats",
    "SloReport",
    "evaluate_slo",
    "attack_windows_from_tracer",
    "LATENCY_SERIES",
    "OPS_OK_SERIES",
    "OPS_ERROR_SERIES",
]

#: Default series names the serving layer records under (see
#: :class:`repro.workloads.ycsb.YcsbRunner`).
LATENCY_SERIES = "service/latency"
OPS_OK_SERIES = "service/ops_ok"
OPS_ERROR_SERIES = "service/ops_error"

_LATENCY_METRICS = {"p50": 50.0, "p95": 95.0, "p99": 99.0, "p999": 99.9}
_METRICS = tuple(_LATENCY_METRICS) + ("avail",)
_OPS = ("<=", ">=", "<", ">")  # two-char ops first for the regex
_UNITS_S = {"us": 1e-6, "ms": 1e-3, "s": 1.0, "": 1.0}

_OBJECTIVE_RE = re.compile(
    r"^(?P<metric>[a-z0-9]+)\s*(?P<op><=|>=|<|>)\s*"
    r"(?P<value>[0-9.]+)\s*(?P<unit>us|ms|s)?$"
)


@dataclass(frozen=True)
class SloObjective:
    """One bound: ``metric op threshold``.

    ``threshold`` is in seconds for latency metrics and in percent
    (0-100) for ``avail``.
    """

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.metric not in _METRICS:
            raise ConfigurationError(
                f"unknown SLO metric {self.metric!r}: expected one of {_METRICS}"
            )
        if self.op not in _OPS:
            raise ConfigurationError(f"unknown SLO comparator {self.op!r}")
        if self.metric == "avail" and not 0.0 <= self.threshold <= 100.0:
            raise ConfigurationError(
                f"availability threshold must be a percent in [0, 100]: {self.threshold}"
            )
        if self.metric != "avail" and self.threshold < 0.0:
            raise ConfigurationError(
                f"latency threshold must be >= 0: {self.threshold}"
            )

    def holds(self, value: float) -> bool:
        """Does ``value`` satisfy the bound?"""
        if self.op == "<":
            return value < self.threshold
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">":
            return value > self.threshold
        return value >= self.threshold

    def describe(self) -> str:
        if self.metric == "avail":
            return f"avail {self.op} {self.threshold:g}%"
        if self.threshold >= 1.0 or self.threshold == 0.0:
            return f"{self.metric} {self.op} {self.threshold:g}s"
        return f"{self.metric} {self.op} {self.threshold * 1e3:g}ms"


def parse_slo(spec: str) -> List[SloObjective]:
    """Parse the ``--slo`` grammar into objectives.

    >>> [o.describe() for o in parse_slo("p99<5ms,avail>=99.9")]
    ['p99 < 5ms', 'avail >= 99.9%']
    """
    objectives: List[SloObjective] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        match = _OBJECTIVE_RE.match(part)
        if match is None:
            raise ConfigurationError(
                f"cannot parse SLO objective {part!r} "
                f"(grammar: METRIC OP VALUE[UNIT], e.g. p99<5ms or avail>=99.9)"
            )
        metric = match.group("metric")
        unit = match.group("unit") or ""
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ConfigurationError(f"bad SLO threshold in {part!r}") from exc
        if metric == "avail":
            if unit:
                raise ConfigurationError(
                    f"availability objectives take a bare percent, not {unit!r}"
                )
            threshold = value
        else:
            threshold = value * _UNITS_S[unit]
        objectives.append(SloObjective(metric=metric, op=match.group("op"), threshold=threshold))
    if not objectives:
        raise ConfigurationError(f"empty SLO spec: {spec!r}")
    return objectives


@dataclass(frozen=True)
class WindowEval:
    """One evaluated window: the measured numbers and what they broke."""

    t_s: float
    interval_s: float
    ops: int
    errors: int
    avail_pct: float
    latency: Dict[str, float]  # metric -> seconds (math.inf for overflow)
    violated: Tuple[str, ...]  # objective describe() strings, spec order

    @property
    def ok(self) -> bool:
        return not self.violated


@dataclass(frozen=True)
class AttackWindowStats:
    """Operator view of one attack window."""

    start_s: float
    end_s: float
    degraded_s: float  # violating window-time at/after the attack started
    time_to_recover_s: Optional[float]  # None = never recovered in-observation

    def describe(self) -> str:
        recover = (
            "never recovered"
            if self.time_to_recover_s is None
            else f"recovered {self.time_to_recover_s:.1f}s after attack end"
        )
        return (
            f"attack {self.start_s:.1f}-{self.end_s:.1f}s: "
            f"{self.degraded_s:.1f}s degraded, {recover}"
        )


@dataclass
class SloReport:
    """The full SLO evaluation for one run."""

    objectives: List[SloObjective]
    windows: List[WindowEval] = field(default_factory=list)
    attack_windows: List[AttackWindowStats] = field(default_factory=list)

    @property
    def violation_minutes(self) -> float:
        """Window-minutes with at least one violated objective."""
        return sum(w.interval_s for w in self.windows if w.violated) / 60.0

    @property
    def violation_s(self) -> float:
        """Window-seconds with at least one violated objective."""
        return sum(w.interval_s for w in self.windows if w.violated)

    def error_budget_burn(self) -> Optional[float]:
        """Mean burn rate of the availability error budget (1.0 = the
        budget exactly spends over the observed span; >1 overspends).
        None without an ``avail`` objective or without traffic."""
        budgets = [o for o in self.objectives if o.metric == "avail"]
        if not budgets:
            return None
        budget_frac = max(1e-12, 1.0 - min(o.threshold for o in budgets) / 100.0)
        active = [w for w in self.windows if w.ops + w.errors > 0]
        if not active:
            return None
        burns = [(1.0 - w.avail_pct / 100.0) / budget_frac for w in active]
        return sum(burns) / len(burns)

    def worst(self, metric: str) -> float:
        """Worst windowed value of a metric (max latency, min avail)."""
        if metric == "avail":
            active = [w.avail_pct for w in self.windows if w.ops + w.errors > 0]
            return min(active) if active else 100.0
        values = [w.latency.get(metric, 0.0) for w in self.windows]
        return max(values) if values else 0.0

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (the dashboard's SLO island)."""
        return {
            "objectives": [o.describe() for o in self.objectives],
            "violation_minutes": self.violation_minutes,
            "error_budget_burn": self.error_budget_burn(),
            "windows": [
                {
                    "t_s": w.t_s,
                    "interval_s": w.interval_s,
                    "ops": w.ops,
                    "errors": w.errors,
                    "avail_pct": w.avail_pct,
                    "latency": {
                        k: (None if math.isinf(v) else v) for k, v in w.latency.items()
                    },
                    "violated": list(w.violated),
                }
                for w in self.windows
            ],
            "attack_windows": [
                {
                    "start_s": a.start_s,
                    "end_s": a.end_s,
                    "degraded_s": a.degraded_s,
                    "time_to_recover_s": a.time_to_recover_s,
                }
                for a in self.attack_windows
            ],
        }

    def render(self) -> str:
        """A terminal-friendly SLO summary table."""
        lines = ["SLO summary"]
        lines.append(
            "  objectives:        " + ", ".join(o.describe() for o in self.objectives)
        )
        lines.append(f"  windows evaluated: {len(self.windows)}")
        lines.append(
            f"  violation time:    {self.violation_s:.1f} s "
            f"({self.violation_minutes:.3f} min)"
        )
        burn = self.error_budget_burn()
        if burn is not None:
            lines.append(f"  error-budget burn: {burn:.2f}x")
        for metric in ("p50", "p99", "p999"):
            worst = self.worst(metric)
            if worst:
                text = "inf" if math.isinf(worst) else f"{worst * 1e3:.1f} ms"
                label = f"worst {metric}:"
                lines.append(f"  {label:<19}{text}")
        if any(w.ops + w.errors for w in self.windows):
            lines.append(f"  worst avail:       {self.worst('avail'):.3f}%")
        for attack in self.attack_windows:
            lines.append(f"  {attack.describe()}")
        return "\n".join(lines)


def _percentiles(series: Optional[TimeSeries], index: int) -> Dict[str, float]:
    out: Dict[str, float] = {}
    window = series.windows.get(index) if series is not None else None
    for metric, pct in _LATENCY_METRICS.items():
        if window is None:
            out[metric] = 0.0
        else:
            out[metric] = window.percentile(series.bounds, pct)
    return out


def evaluate_slo(
    recorder: SeriesRecorder,
    objectives: Sequence[SloObjective],
    latency_series: str = LATENCY_SERIES,
    ok_series: str = OPS_OK_SERIES,
    error_series: str = OPS_ERROR_SERIES,
    attack_windows: Optional[Sequence[Tuple[float, Optional[float]]]] = None,
) -> SloReport:
    """Evaluate ``objectives`` window by window over recorded series.

    Windows span the **contiguous** range from the first to the last
    populated window across the three input series — an interior window
    with zero completed operations is a *stall*, not a gap in the data:
    it evaluates as 0% availability (a write blocked across the whole
    window served nobody), which is how a zero-throughput attack regime
    becomes visible violation minutes.  Latency objectives stay vacuous
    on empty windows, and latency percentiles that land in the
    histogram overflow bucket evaluate as ``math.inf`` — always a
    violation of an upper bound, never silently under-stated.
    """
    latency = recorder.get(latency_series)
    ok = recorder.get(ok_series)
    errors = recorder.get(error_series)

    indexes: set = set()
    interval = recorder.interval_s
    for series in (latency, ok, errors):
        if series is not None:
            indexes.update(series.windows)
            interval = series.interval_s
    report = SloReport(objectives=list(objectives))

    index_range = range(min(indexes), max(indexes) + 1) if indexes else range(0)
    for index in index_range:
        ok_count = int(ok.value_at(index, "sum")) if ok is not None else 0
        err_count = int(errors.value_at(index, "sum")) if errors is not None else 0
        total = ok_count + err_count
        avail_pct = 100.0 * ok_count / total if total else 0.0
        percentiles = _percentiles(latency, index)
        violated: List[str] = []
        for objective in objectives:
            if objective.metric == "avail":
                value = avail_pct
            elif total or (latency is not None and index in latency.windows):
                value = percentiles[objective.metric]
            else:
                continue  # latency objectives are vacuous on empty windows
            if not objective.holds(value):
                violated.append(objective.describe())
        report.windows.append(
            WindowEval(
                t_s=index * interval,
                interval_s=interval,
                ops=ok_count,
                errors=err_count,
                avail_pct=avail_pct,
                latency=percentiles,
                violated=tuple(violated),
            )
        )

    if attack_windows:
        _, observed_end = recorder.span_s()
        for start_s, end_s in attack_windows:
            report.attack_windows.append(
                _attack_stats(report.windows, start_s, end_s, observed_end)
            )
    return report


def _attack_stats(
    windows: Sequence[WindowEval],
    start_s: float,
    end_s: Optional[float],
    observed_end_s: float,
) -> AttackWindowStats:
    """Degraded time and recovery for one attack window.

    Degraded time counts violating windows from the attack's start
    onward (the tail after the attack stops is the recovery transient —
    it belongs to this attack).  Time-to-recover is the gap between the
    attack's end and the start of the first non-violating window after
    it; None when every later window (or the last one observed)
    still violates.
    """
    effective_end = observed_end_s if end_s is None else end_s
    degraded = 0.0
    recover_at: Optional[float] = None
    for window in windows:
        window_end = window.t_s + window.interval_s
        if window_end <= start_s:
            continue
        if window.violated:
            degraded += window.interval_s
            if window.t_s >= effective_end:
                recover_at = None  # still broken after the attack stopped
        elif window.t_s >= effective_end and recover_at is None:
            recover_at = window.t_s
    time_to_recover = None if recover_at is None else max(0.0, recover_at - effective_end)
    if not any(w.violated and w.t_s + w.interval_s > start_s for w in windows):
        time_to_recover = 0.0  # the attack never degraded the service
    return AttackWindowStats(
        start_s=start_s,
        end_s=effective_end,
        degraded_s=degraded,
        time_to_recover_s=time_to_recover,
    )


def attack_windows_from_tracer(tracer) -> List[Tuple[float, Optional[float]]]:
    """(start_s, end_s) attack windows from ``attack.on``/``attack.off``
    instants (as emitted by :class:`~repro.core.fleet.DriveRack` and the
    YCSB service simulation).  An ``attack.on`` with no matching ``off``
    yields ``end_s=None`` (still active when observation stopped)."""
    if tracer is None:
        return []
    edges = [
        (event.ts_s, event.name)
        for event in tracer.events
        if event.name in ("attack.on", "attack.off")
    ]
    edges.sort(key=lambda edge: edge[0])
    windows: List[Tuple[float, Optional[float]]] = []
    open_start: Optional[float] = None
    for ts_s, name in edges:
        if name == "attack.on":
            if open_start is None:
                open_start = ts_s
        elif open_start is not None:
            windows.append((open_start, ts_s))
            open_start = None
    if open_start is not None:
        windows.append((open_start, None))
    return windows
