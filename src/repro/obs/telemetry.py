"""The process-wide telemetry switchboard.

A :class:`Telemetry` bundles one :class:`~repro.obs.trace.Tracer`, one
:class:`~repro.obs.metrics.MetricsRegistry`, and one
:class:`~repro.obs.timeseries.SeriesRecorder`.  Exactly one bundle
(or none) is *installed* at a time; instrumented components look the
active bundle up **when they are constructed** — the same discipline as
the :mod:`repro.perf` flags — so a campaign enables telemetry by
installing a bundle before it builds its rigs.

With nothing installed, :func:`get` returns None and every component's
guard (``if self._obs is not None``) falls through: no records, no
counter bumps, no RNG or clock interaction — the disabled path is the
pre-telemetry code, bit for bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry
from .timeseries import SeriesRecorder
from .trace import NULL_TRACER, Tracer

__all__ = ["Telemetry", "get", "install", "enabled", "tracer", "session"]


class Telemetry:
    """One tracer + metrics registry + series recorder, enabled as a unit."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        series: Optional[SeriesRecorder] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.series = series if series is not None else SeriesRecorder()


_active: Optional[Telemetry] = None


def get() -> Optional[Telemetry]:
    """The installed bundle, or None while telemetry is disabled."""
    return _active


def enabled() -> bool:
    """True when a telemetry bundle is installed."""
    return _active is not None


def install(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``telemetry`` (None disables); returns the previous bundle.

    Components capture the bundle at construction, so install *before*
    building the rigs that should report into it.
    """
    global _active
    previous = _active
    _active = telemetry
    return previous


def tracer():
    """The active tracer, or the shared no-op recorder when disabled.

    For cold paths that want to record unconditionally without keeping
    their own guard; hot paths should capture :func:`get` once instead.
    """
    return _active.tracer if _active is not None else NULL_TRACER


@contextmanager
def session(
    telemetry: Optional[Telemetry] = None,
) -> Iterator[Telemetry]:
    """Install a bundle for the duration of the block.

    Yields the bundle (a fresh one unless given) and restores whatever
    was installed before, even on error::

        with obs.session() as tel:
            result = run_table3()
        write_chrome_trace(tel.tracer, "table3-trace.json")
    """
    bundle = telemetry if telemetry is not None else Telemetry()
    previous = install(bundle)
    try:
        yield bundle
    finally:
        install(previous)
