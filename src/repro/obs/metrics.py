"""The metrics registry: counters, gauges, fixed-bucket histograms.

Replaces the ad-hoc counter plumbing that grew inside the drive, the
FIO tester, the journal, and the KV store with one process-wide sink:
components get-or-create named, labelled instruments once and bump them
as they work.  The registry is:

* **deterministic** — instruments render and snapshot in sorted
  (name, labels) order, and histograms use fixed bucket bounds, so two
  identical runs produce byte-identical dumps;
* **mergeable** — :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.merge` move totals across process boundaries,
  which is how :class:`~repro.runtime.runner.SweepRunner` folds
  per-worker telemetry back into the campaign totals; and
* **exportable** — :meth:`MetricsRegistry.render_prometheus` writes the
  standard text exposition format.

The legacy stats dataclasses (``DriveStats``, ``JournalStats``,
``DBStats``, ...) remain as the per-component API; the registry is the
cross-component aggregate view.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Fixed latency bucket bounds (seconds): sub-millisecond cache hits up
#: through the 75 s blocked-write pathology of Table 3.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    15.0,
    30.0,
    75.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError(f"counters only go up: {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, last rate, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Move the level by ``delta``."""
        self.value += delta


class Histogram:
    """Fixed-bucket histogram (cumulative buckets on export).

    ``bounds`` are the inclusive upper edges; one implicit +Inf bucket
    catches the overflow.  Fixed bounds keep snapshots mergeable with
    plain elementwise addition.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError("histogram bounds must be sorted ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def percentile(self, pct: float) -> float:
        """Approximate percentile: the upper bound of the bucket that
        contains the requested rank.

        A rank that lands in the implicit overflow bucket reports
        ``math.inf`` — the histogram only knows those observations
        exceeded the last finite bound, and reporting that bound would
        silently under-state p99/p999 tail latency.
        """
        if not 0.0 <= pct <= 100.0:
            raise ConfigurationError(f"percentile out of range: {pct}")
        if self.count == 0:
            return 0.0
        rank = pct / 100.0 * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if index == len(self.bounds):
                    return math.inf
                return self.bounds[index]
        return self.bounds[-1]


class MetricsRegistry:
    """Process-wide named instruments, keyed by (name, sorted labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        self._descriptions: Dict[str, str] = {}

    def _describe(self, name: str, description: Optional[str]) -> None:
        if description and name not in self._descriptions:
            self._descriptions[name] = description

    def description(self, name: str) -> Optional[str]:
        """The registered help text for ``name``, or None."""
        return self._descriptions.get(name)

    # -- instrument access (get-or-create) -----------------------------------

    def counter(
        self, name: str, description: Optional[str] = None, **labels: Any
    ) -> Counter:
        """The counter for (name, labels), created on first use.

        ``description`` registers ``# HELP`` text the first time it is
        given for a name; later values for the same name are ignored.
        """
        self._describe(name, description)
        key = (name, _labels_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(
        self, name: str, description: Optional[str] = None, **labels: Any
    ) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        self._describe(name, description)
        key = (name, _labels_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        description: Optional[str] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram for (name, labels), created on first use.

        ``bounds`` only applies at creation; later lookups must agree
        (mismatched bounds would silently mis-bucket).
        """
        self._describe(name, description)
        key = (name, _labels_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS_S
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise ConfigurationError(
                f"histogram {name!r} already exists with different bounds"
            )
        return metric

    # -- reads ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        """Current value, 0 when the counter was never touched."""
        metric = self._counters.get((name, _labels_key(labels)))
        return 0 if metric is None else metric.value

    def counter_total(self, name: str) -> int:
        """Sum over every label combination of ``name``."""
        return sum(
            metric.value
            for (metric_name, _), metric in self._counters.items()
            if metric_name == name
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- transport -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every instrument (sorted, deterministic)."""
        return {
            "counters": [
                [name, list(map(list, labels)), metric.value]
                for (name, labels), metric in sorted(self._counters.items())
            ],
            "gauges": [
                [name, list(map(list, labels)), metric.value]
                for (name, labels), metric in sorted(self._gauges.items())
            ],
            "histograms": [
                [
                    name,
                    list(map(list, labels)),
                    list(metric.bounds),
                    list(metric.counts),
                    metric.sum,
                    metric.count,
                ]
                for (name, labels), metric in sorted(self._histograms.items())
            ],
            "descriptions": [
                [name, text] for name, text in sorted(self._descriptions.items())
            ],
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` in: counters and histograms add,
        gauges take the incoming value (last writer wins)."""
        for name, text in snapshot.get("descriptions", []):
            self._describe(name, text)
        for name, labels, value in snapshot.get("counters", []):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in snapshot.get("gauges", []):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, bounds, counts, total, count in snapshot.get(
            "histograms", []
        ):
            label_map = dict(labels)
            existing = self._histograms.get((name, _labels_key(label_map)))
            snapshot_bounds = tuple(float(b) for b in bounds)
            if existing is not None and snapshot_bounds != existing.bounds:
                # Same bucket *count* does not mean same bucket *edges*;
                # adding such counts elementwise would silently
                # mis-bucket, so refuse with a merge-specific error.
                raise ConfigurationError(
                    f"histogram {name!r}: cannot merge snapshot with bounds "
                    f"{list(snapshot_bounds)} into registered bounds "
                    f"{list(existing.bounds)}"
                )
            metric = self.histogram(name, bounds=bounds, **label_map)
            if len(counts) != len(metric.counts):
                raise ConfigurationError(
                    f"histogram {name!r}: merging {len(counts)} buckets "
                    f"into {len(metric.counts)}"
                )
            for index, bucket_count in enumerate(counts):
                metric.counts[index] += bucket_count
            metric.sum += total
            metric.count += count

    # -- export --------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (sorted, stable)."""
        lines: List[str] = []
        emitted_types: set = set()

        def type_line(name: str, kind: str) -> None:
            if name not in emitted_types:
                emitted_types.add(name)
                help_text = self._descriptions.get(name)
                if help_text:
                    escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
                    lines.append(f"# HELP {name} {escaped}")
                lines.append(f"# TYPE {name} {kind}")

        for (name, labels), metric in sorted(self._counters.items()):
            type_line(name, "counter")
            lines.append(f"{name}{_labels_text(labels)} {metric.value}")
        for (name, labels), metric in sorted(self._gauges.items()):
            type_line(name, "gauge")
            lines.append(f"{name}{_labels_text(labels)} {metric.value:g}")
        for (name, labels), metric in sorted(self._histograms.items()):
            type_line(name, "histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                bucket_labels = _labels_text(labels + (("le", f"{bound:g}"),))
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            cumulative += metric.counts[-1]
            inf_labels = _labels_text(labels + (("le", "+Inf"),))
            lines.append(f"{name}_bucket{inf_labels} {cumulative}")
            lines.append(f"{name}_sum{_labels_text(labels)} {metric.sum:.9g}")
            lines.append(f"{name}_count{_labels_text(labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")
