"""Incident reports: the Table 3 crash story as one artifact.

The paper tells its availability story across four silos — the dmesg
error chain, SMART anomalies, the blocked-write latency, and the final
time-to-crash number.  :func:`build_incident_report` correlates what a
run's tracer captured (error spans, kernel log events) with the
monitor's crash reports, SMART forensics, and the metrics registry into
a single markdown timeline an incident responder could read top to
bottom.

Everything is duck-typed: crash entries need ``application`` /
``time_to_crash_s`` / ``error_output`` (``description`` optional),
SMART inputs are pre-rendered report strings, so the builder imports
nothing from ``hdd``/``core`` and stays cycle-free.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["build_incident_report"]

#: Timeline rows kept per report; earlier rows collapse into a marker.
_MAX_TIMELINE_ROWS = 200


def _crash_summary(crashes: Sequence[Tuple[str, Optional[Any]]]) -> List[str]:
    lines = [
        "| Application | Description | Time to crash | Error output |",
        "| --- | --- | --- | --- |",
    ]
    for name, report in crashes:
        if report is None:
            lines.append(f"| {name} |  | survived | - |")
        else:
            description = getattr(report, "description", "")
            lines.append(
                f"| {name} | {description} | {report.time_to_crash_s:.1f} s "
                f"| `{report.error_output}` |"
            )
    return lines


def _timeline_rows(
    tracer,
    crashes: Sequence[Tuple[str, Optional[Any]]],
) -> List[Tuple[float, str]]:
    """(virtual time, rendered line) rows, unsorted.

    Healthy spans are noise at incident scale, so only error-status
    spans make the cut; instant events (kernel log lines, crash
    markers, retry bursts) all do.
    """
    rows: List[Tuple[float, str]] = []
    if tracer is not None:
        for span in tracer.spans:
            if span.status == "ok":
                continue
            rows.append(
                (
                    span.start_s,
                    f"`{span.track}` span **{span.name}** failed after "
                    f"{span.duration_s:.3f} s",
                )
            )
        for event in tracer.events:
            detail = ""
            if event.args:
                text = event.args.get("text") or event.args.get("message")
                if text:
                    detail = f" — `{text}`"
            rows.append((event.ts_s, f"`{event.track}` {event.name}{detail}"))
    for name, report in crashes:
        if report is not None:
            rows.append(
                (
                    report.time_to_crash_s,
                    f"**CRASH** {name}: `{report.error_output}` "
                    f"(t+{report.time_to_crash_s:.1f} s into the attack window)",
                )
            )
    return rows


def _metrics_headlines(metrics) -> List[str]:
    """The counter totals, one line each, sorted by name."""
    totals: Dict[str, int] = {}
    for name, _labels, value in metrics.snapshot()["counters"]:
        totals[name] = totals.get(name, 0) + value
    return [f"- `{name}`: {value}" for name, value in sorted(totals.items())]


def build_incident_report(
    crashes: Sequence[Tuple[str, Optional[Any]]],
    tracer=None,
    metrics=None,
    smart_reports: Optional[Dict[str, str]] = None,
    title: str = "Incident report: storage availability under acoustic attack",
) -> str:
    """Render the correlated incident timeline as markdown.

    Args:
        crashes: ``(application name, crash report or None)`` pairs, in
            the order the victims were attacked.
        tracer: optional tracer whose error spans and instant events
            (including ingested dmesg lines) populate the timeline.
        metrics: optional registry; counter totals become the
            "by the numbers" section.
        smart_reports: optional per-application pre-rendered
            :meth:`~repro.hdd.smart.SmartLog.report` strings.
    """
    sections: List[str] = [f"# {title}", ""]

    crashed = [name for name, report in crashes if report is not None]
    survived = [name for name, report in crashes if report is None]
    verdict = (
        f"{len(crashed)}/{len(list(crashes))} applications crashed"
        + (f" ({', '.join(crashed)})" if crashed else "")
        + (f"; survived: {', '.join(survived)}" if survived else "")
        + "."
    )
    sections.append(verdict)
    sections.append("")

    sections.append("## Crash summary")
    sections.append("")
    sections.extend(_crash_summary(crashes))
    sections.append("")

    rows = _timeline_rows(tracer, crashes)
    rows.sort(key=lambda row: (row[0], row[1]))
    sections.append("## Timeline (virtual seconds)")
    sections.append("")
    if not rows:
        sections.append("_No timeline records captured (run with `--trace`)._")
    else:
        omitted = len(rows) - _MAX_TIMELINE_ROWS
        if omitted > 0:
            sections.append(f"_... {omitted} earlier entries omitted ..._")
            rows = rows[omitted:]
        for ts_s, line in rows:
            sections.append(f"- `t+{ts_s:10.3f}s` {line}")
    sections.append("")

    if metrics is not None and len(metrics):
        sections.append("## By the numbers")
        sections.append("")
        sections.extend(_metrics_headlines(metrics))
        sections.append("")

    for name, report_text in sorted((smart_reports or {}).items()):
        sections.append(f"## SMART forensics: {name}")
        sections.append("")
        sections.append("```")
        sections.append(report_text)
        sections.append("```")
        sections.append("")

    return "\n".join(sections).rstrip() + "\n"
