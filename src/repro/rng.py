"""Deterministic random number generation.

Every stochastic component of the simulation draws from a
:class:`ReproRandom` seeded stream so that experiments are reproducible
run-to-run.  Components that need independent streams derive them with
:meth:`ReproRandom.fork`, which hashes a label into the child seed; this
keeps results stable even when components are constructed in a different
order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

__all__ = ["ReproRandom", "DEFAULT_SEED"]

DEFAULT_SEED = 0xDEE9_007E


class ReproRandom:
    """A labelled, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = DEFAULT_SEED, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self._rng = random.Random(self.seed)

    def fork(self, label: str) -> "ReproRandom":
        """Derive an independent stream keyed by ``label``.

        The child seed is a stable hash of the parent seed and the label,
        so two forks with the same label always produce the same stream.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        return ReproRandom(child_seed, label=f"{self.label}/{label}")

    # -- thin delegating surface ------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def randbytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes."""
        return bytes(self._rng.getrandbits(8) for _ in range(n))

    def choice(self, seq):
        """Uniformly choose one element of ``seq``."""
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability (clamped to [0, 1])."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReproRandom(seed={self.seed:#x}, label={self.label!r})"


def make_rng(seed: Optional[int] = None, label: str = "root") -> ReproRandom:
    """Build a root RNG, defaulting to the package-wide seed."""
    return ReproRandom(DEFAULT_SEED if seed is None else seed, label=label)
