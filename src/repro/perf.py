"""Runtime switches for the hot-path I/O engine optimizations.

The simulator's hot paths (servo transfer-function memoization, the
controller's static-vibration fast path, geometry locate caching) are
*bit-identical* rewrites of the original math: they change wall-clock
cost, never results.  These switches exist so that claim can be checked
and benchmarked rather than trusted:

* the cache-correctness tests run the same campaign with and without
  the caches and compare outputs byte for byte;
* ``tools/bench_json.py`` measures a cold sweep in both modes and
  records the speedup in ``BENCH_PR2.json``.

Flags default to *on* and can be forced off for a whole process with
environment variables (read once at import)::

    REPRO_SERVO_CACHE=0    # disable servo/modal memoization
    REPRO_IO_FAST_PATH=0   # disable controller fast path + locate cache
    REPRO_VEC_PHYSICS=0    # disable the numpy-vectorized kernels
    REPRO_FIELD_CACHE=0    # disable the acoustic-field memo cache

or toggled in-process with :func:`perf_baseline` /
:func:`set_servo_cache_enabled` / :func:`set_io_fast_path_enabled` /
:func:`set_vec_physics_enabled` / :func:`set_field_cache_enabled`.
Components read the flags when they are *constructed* (a fresh drive,
controller, or servo picks up the current setting), except the shared
geometry locate cache, which consults the flag per call so an already
built geometry also honours baseline mode.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.errors import ConfigurationError

__all__ = [
    "ENV_FLAGS",
    "servo_cache_enabled",
    "io_fast_path_enabled",
    "vec_physics_enabled",
    "field_cache_enabled",
    "set_servo_cache_enabled",
    "set_io_fast_path_enabled",
    "set_vec_physics_enabled",
    "set_field_cache_enabled",
    "perf_baseline",
]

_FALSE = {"0", "false", "no", "off"}

#: Registry of every ``REPRO_*`` environment switch the package reads,
#: with a one-line description.  This is the source of truth deepcheck's
#: DC08 rule checks env reads against: a flag read anywhere in ``src/``
#: whose name is missing here fails ``make deepcheck``, so there can be
#: no invisible knobs the before/after benchmark harness cannot list.
ENV_FLAGS: Dict[str, str] = {
    "REPRO_SERVO_CACHE": "servo/modal transfer-function memoization",
    "REPRO_IO_FAST_PATH": "controller fast path + geometry locate cache",
    "REPRO_VEC_PHYSICS": "numpy-vectorized physics kernels",
    "REPRO_FIELD_CACHE": "shared acoustic-field memo cache",
}


def _env_flag(name: str, default: bool = True) -> bool:
    if name not in ENV_FLAGS:
        raise ConfigurationError(
            f"undeclared env flag {name!r}: add it to repro.perf.ENV_FLAGS"
        )
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSE


_servo_cache: bool = _env_flag("REPRO_SERVO_CACHE")
_io_fast_path: bool = _env_flag("REPRO_IO_FAST_PATH")
_vec_physics: bool = _env_flag("REPRO_VEC_PHYSICS")
_field_cache: bool = _env_flag("REPRO_FIELD_CACHE")


def servo_cache_enabled() -> bool:
    """True when servo/modal transfer functions may memoize."""
    return _servo_cache


def io_fast_path_enabled() -> bool:
    """True when the controller/geometry fast paths are active."""
    return _io_fast_path


def vec_physics_enabled() -> bool:
    """True when the numpy-vectorized kernels may be used."""
    return _vec_physics


def field_cache_enabled() -> bool:
    """True when the acoustic-field cache may serve coupling results."""
    return _field_cache


def set_servo_cache_enabled(enabled: bool) -> bool:
    """Set the servo-cache flag; returns the previous value."""
    global _servo_cache
    previous = _servo_cache
    _servo_cache = bool(enabled)
    return previous


def set_io_fast_path_enabled(enabled: bool) -> bool:
    """Set the I/O fast-path flag; returns the previous value."""
    global _io_fast_path
    previous = _io_fast_path
    _io_fast_path = bool(enabled)
    return previous


def set_vec_physics_enabled(enabled: bool) -> bool:
    """Set the vectorized-kernel flag; returns the previous value."""
    global _vec_physics
    previous = _vec_physics
    _vec_physics = bool(enabled)
    return previous


def set_field_cache_enabled(enabled: bool) -> bool:
    """Set the acoustic-field-cache flag; returns the previous value."""
    global _field_cache
    previous = _field_cache
    _field_cache = bool(enabled)
    return previous


@contextmanager
def perf_baseline() -> Iterator[None]:
    """Run a block with every hot-path optimization disabled.

    Components built inside the block evaluate the original,
    unmemoized code paths — this is the "before" half of every
    before/after comparison.  Flags are restored on exit.
    """
    servo_prev = set_servo_cache_enabled(False)
    io_prev = set_io_fast_path_enabled(False)
    vec_prev = set_vec_physics_enabled(False)
    field_prev = set_field_cache_enabled(False)
    try:
        yield
    finally:
        set_servo_cache_enabled(servo_prev)
        set_io_fast_path_enabled(io_prev)
        set_vec_physics_enabled(vec_prev)
        set_field_cache_enabled(field_prev)
