"""Physical constants and unit conversions used throughout the package.

Every module stores quantities in SI units internally (pascals, metres,
hertz, seconds, kilograms).  Decibel quantities are only ever produced or
consumed at the edges, through the helpers in :mod:`repro.acoustics.spl`
and the converters below.
"""

from __future__ import annotations

import math

from .errors import UnitError

# --------------------------------------------------------------------------
# Reference pressures (the air/water +26 dB shift in the paper comes from
# the ratio of these two references: 20 * log10(20 uPa / 1 uPa) ~= 26 dB).
# --------------------------------------------------------------------------

#: Reference pressure for SPL in air (20 micropascal), in Pa.
P_REF_AIR = 20e-6

#: Reference pressure for SPL in water (1 micropascal), in Pa.
P_REF_WATER = 1e-6

# --------------------------------------------------------------------------
# Medium properties at room conditions.
# --------------------------------------------------------------------------

#: Density of fresh water at ~20 C, kg/m^3.
DENSITY_FRESH_WATER = 998.0

#: Density of sea water at ~13 C / 35 ppt, kg/m^3.
DENSITY_SEA_WATER = 1026.0

#: Density of air at 20 C, kg/m^3.
DENSITY_AIR = 1.204

#: Density of nitrogen gas at 20 C / 1 atm, kg/m^3 (data-center fill gas).
DENSITY_NITROGEN = 1.165

#: Speed of sound in air at 20 C, m/s.
SOUND_SPEED_AIR = 343.0

#: Speed of sound in nitrogen at 20 C, m/s.
SOUND_SPEED_NITROGEN = 349.0

#: Nominal speed of sound in fresh water at 20 C, m/s.
SOUND_SPEED_FRESH_WATER = 1481.0

# --------------------------------------------------------------------------
# Sizes and times.
# --------------------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

SECTOR_SIZE = 512
BLOCK_4K = 4 * KIB

MS = 1e-3
US = 1e-6
NS = 1e-9

#: Nanometre in metres (track pitches and off-track thresholds).
NM = 1e-9

CM = 1e-2
KM = 1e3


def db_to_ratio(db: float) -> float:
    """Convert a decibel *amplitude* gain to a linear pressure ratio.

    >>> db_to_ratio(0.0)
    1.0
    >>> db_to_ratio(20.0)
    10.0
    """
    return 10.0 ** (db / 20.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear pressure ratio to decibels (amplitude convention).

    >>> ratio_to_db(10.0)
    20.0
    >>> ratio_to_db(0.0)
    Traceback (most recent call last):
        ...
    repro.errors.UnitError: pressure ratio must be positive, got 0.0
    """
    if ratio <= 0.0:
        raise UnitError(f"pressure ratio must be positive, got {ratio!r}")
    return 20.0 * math.log10(ratio)


def db_power_to_ratio(db: float) -> float:
    """Convert a decibel *power* gain to a linear power ratio.

    >>> db_power_to_ratio(10.0)
    10.0
    """
    return 10.0 ** (db / 10.0)


def mb_per_s(bytes_count: float, seconds: float) -> float:
    """Throughput in MB/s (decimal megabytes, matching FIO's reporting).

    >>> mb_per_s(5_000_000, 2.0)
    2.5
    """
    if seconds <= 0.0:
        raise UnitError(f"duration must be positive, got {seconds!r}")
    return bytes_count / 1e6 / seconds


def rpm_to_rev_time(rpm: float) -> float:
    """Rotation period in seconds of a spindle turning at ``rpm``.

    >>> rpm_to_rev_time(6000.0)
    0.01
    >>> round(rpm_to_rev_time(7200.0) * 1e3, 3)  # the victim drive, in ms
    8.333
    """
    if rpm <= 0.0:
        raise UnitError(f"spindle speed must be positive, got {rpm!r}")
    return 60.0 / rpm


def celsius_to_kelvin(celsius: float) -> float:
    """Convert Celsius to Kelvin, validating against absolute zero.

    >>> celsius_to_kelvin(20.0)
    293.15
    """
    kelvin = celsius + 273.15
    if kelvin < 0.0:
        raise UnitError(f"temperature below absolute zero: {celsius!r} C")
    return kelvin


def depth_to_pressure_atm(depth_m: float) -> float:
    """Approximate absolute pressure in atmospheres at ``depth_m`` metres.

    Hydrostatic pressure rises roughly one atmosphere every 10 metres of
    sea water; used by the absorption formulas.

    >>> depth_to_pressure_atm(0.0)
    1.0
    >>> depth_to_pressure_atm(10.0)
    2.0
    """
    if depth_m < 0.0:
        raise UnitError(f"depth must be non-negative, got {depth_m!r}")
    return 1.0 + depth_m / 10.0
