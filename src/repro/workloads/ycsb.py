"""YCSB-style workloads for the key-value store.

The Yahoo! Cloud Serving Benchmark's canonical mixes are how storage
papers characterise "realistic" serving traffic; running them against
the simulated store (quiet and under attack) shows how the attack's
write-path bias lands on different application profiles:

* **A** — update heavy (50/50 read/update)
* **B** — read mostly (95/5)
* **C** — read only
* **D** — read latest (95/5 insert, reads skewed to recent keys)
* **F** — read-modify-write

Keys follow a Zipfian popularity distribution (seeded, Gray et al.'s
rejection-free inverse-CDF approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import (
    BlockIOError,
    ConfigurationError,
    DatabaseClosed,
    DriveError,
    WALSyncError,
)
from repro.rng import ReproRandom, make_rng
from repro.storage.kv.db import DB

__all__ = ["ZipfianGenerator", "YcsbWorkload", "YcsbResult", "YcsbRunner", "WORKLOADS"]

_FATAL = (WALSyncError, DatabaseClosed, BlockIOError, DriveError)


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n) (theta ~ 0.99 like YCSB)."""

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[ReproRandom] = None) -> None:
        if n < 1:
            raise ConfigurationError(f"population must be >= 1: {n}")
        if not 0.0 < theta < 1.0:
            raise ConfigurationError(f"theta must be in (0, 1): {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else make_rng().fork("zipf")
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._zeta2 = 1.0 + 2.0 ** -theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    def next(self) -> int:
        """Draw one rank (0 = most popular)."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


@dataclass(frozen=True)
class YcsbWorkload:
    """An operation mix (fractions must sum to 1)."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    scan_length: int = 20

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"workload {self.name}: mix sums to {total}")


#: The canonical mixes.
WORKLOADS: Dict[str, YcsbWorkload] = {
    "A": YcsbWorkload("A", read=0.5, update=0.5),
    "B": YcsbWorkload("B", read=0.95, update=0.05),
    "C": YcsbWorkload("C", read=1.0),
    "D": YcsbWorkload("D", read=0.95, insert=0.05),
    "F": YcsbWorkload("F", read=0.5, rmw=0.5),
}


@dataclass
class YcsbResult:
    """Aggregated outcome of one YCSB run."""

    workload: str
    ops: int = 0
    reads: int = 0
    writes: int = 0
    scans: int = 0
    found: int = 0
    elapsed_s: float = 0.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def ops_per_second(self) -> float:
        """Operation throughput."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.ops / self.elapsed_s


class YcsbRunner:
    """Executes YCSB mixes against one DB on its virtual clock."""

    def __init__(
        self,
        db: DB,
        record_count: int = 5_000,
        value_size: int = 100,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if record_count < 1 or value_size < 1:
            raise ConfigurationError("record count and value size must be positive")
        self.db = db
        self.record_count = record_count
        self.value_size = value_size
        self.rng = rng if rng is not None else make_rng().fork("ycsb")
        self._zipf = ZipfianGenerator(record_count, rng=self.rng.fork("zipf"))
        self._inserted = 0

    def _key(self, rank: int) -> bytes:
        return f"user{rank:012d}".encode()

    def _value(self, rank: int) -> bytes:
        return (f"field0={rank};".encode() * (self.value_size // 10 + 1))[: self.value_size]

    def load(self) -> None:
        """The YCSB load phase: insert every record."""
        for rank in range(self.record_count):
            self.db.put(self._key(rank), self._value(rank))
        self._inserted = self.record_count
        self.db.flush()

    def run(self, workload: YcsbWorkload, duration_s: float = 1.0) -> YcsbResult:
        """The transaction phase: run the mix for ``duration_s``."""
        if self._inserted == 0:
            raise ConfigurationError("run load() first")
        result = YcsbResult(workload=workload.name)
        clock = self.db.clock
        start = clock.now
        thresholds = (
            workload.read,
            workload.read + workload.update,
            workload.read + workload.update + workload.insert,
            workload.read + workload.update + workload.insert + workload.rmw,
        )
        try:
            while clock.now - start < duration_s:
                rank = min(self._zipf.next(), self._inserted - 1)
                key = self._key(rank)
                draw = self.rng.random()
                result.ops += 1
                if draw < thresholds[0]:
                    result.reads += 1
                    if self.db.get(key) is not None:
                        result.found += 1
                elif draw < thresholds[1]:
                    result.writes += 1
                    self.db.put(key, self._value(rank))
                elif draw < thresholds[2]:
                    result.writes += 1
                    self.db.put(self._key(self._inserted), self._value(self._inserted))
                    self._inserted += 1
                elif draw < thresholds[3]:
                    result.reads += 1
                    result.writes += 1
                    existing = self.db.get(key)
                    if existing is not None:
                        result.found += 1
                    self.db.put(key, self._value(rank))
                else:
                    result.scans += 1
                    count = 0
                    for _ in self.db.range_scan(start=key):
                        count += 1
                        if count >= workload.scan_length:
                            break
        except _FATAL as err:
            result.aborted = True
            result.abort_reason = str(err)
        result.elapsed_s = clock.now - start
        return result
