"""YCSB-style workloads for the key-value store.

The Yahoo! Cloud Serving Benchmark's canonical mixes are how storage
papers characterise "realistic" serving traffic; running them against
the simulated store (quiet and under attack) shows how the attack's
write-path bias lands on different application profiles:

* **A** — update heavy (50/50 read/update)
* **B** — read mostly (95/5)
* **C** — read only
* **D** — read latest (95/5 insert, reads skewed to recent keys)
* **F** — read-modify-write

Keys follow a Zipfian popularity distribution (seeded, Gray et al.'s
rejection-free inverse-CDF approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    BlockIOError,
    ConfigurationError,
    DatabaseClosed,
    DriveError,
    WALSyncError,
)
from repro.obs import telemetry as obs
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_S
from repro.rng import ReproRandom, make_rng
from repro.storage.kv.db import DB

#: Service-op latency buckets: the KV fast path completes in tens of
#: microseconds, far below the drive-level default buckets, so the
#: service histogram prepends a sub-millisecond decade — otherwise a
#: 10x retry-driven latency inflation hides inside the first bucket.
SERVICE_LATENCY_BOUNDS_S = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
) + DEFAULT_LATENCY_BUCKETS_S

__all__ = [
    "ZipfianGenerator",
    "YcsbWorkload",
    "YcsbResult",
    "YcsbRunner",
    "WORKLOADS",
    "ServiceRunResult",
    "run_service_attack",
]

_FATAL = (WALSyncError, DatabaseClosed, BlockIOError, DriveError)


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n) (theta ~ 0.99 like YCSB)."""

    def __init__(self, n: int, theta: float = 0.99, rng: Optional[ReproRandom] = None) -> None:
        if n < 1:
            raise ConfigurationError(f"population must be >= 1: {n}")
        if not 0.0 < theta < 1.0:
            raise ConfigurationError(f"theta must be in (0, 1): {theta}")
        self.n = n
        self.theta = theta
        self.rng = rng if rng is not None else make_rng().fork("zipf")
        self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._zeta2 = 1.0 + 2.0 ** -theta
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    def next(self) -> int:
        """Draw one rank (0 = most popular)."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._zeta2:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)


@dataclass(frozen=True)
class YcsbWorkload:
    """An operation mix (fractions must sum to 1)."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    rmw: float = 0.0
    scan: float = 0.0
    scan_length: int = 20

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw + self.scan
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"workload {self.name}: mix sums to {total}")


#: The canonical mixes.
WORKLOADS: Dict[str, YcsbWorkload] = {
    "A": YcsbWorkload("A", read=0.5, update=0.5),
    "B": YcsbWorkload("B", read=0.95, update=0.05),
    "C": YcsbWorkload("C", read=1.0),
    "D": YcsbWorkload("D", read=0.95, insert=0.05),
    "F": YcsbWorkload("F", read=0.5, rmw=0.5),
}


@dataclass
class YcsbResult:
    """Aggregated outcome of one YCSB run."""

    workload: str
    ops: int = 0
    reads: int = 0
    writes: int = 0
    scans: int = 0
    found: int = 0
    elapsed_s: float = 0.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def ops_per_second(self) -> float:
        """Operation throughput."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.ops / self.elapsed_s


class YcsbRunner:
    """Executes YCSB mixes against one DB on its virtual clock."""

    def __init__(
        self,
        db: DB,
        record_count: int = 5_000,
        value_size: int = 100,
        rng: Optional[ReproRandom] = None,
    ) -> None:
        if record_count < 1 or value_size < 1:
            raise ConfigurationError("record count and value size must be positive")
        self.db = db
        self.record_count = record_count
        self.value_size = value_size
        self.rng = rng if rng is not None else make_rng().fork("ycsb")
        self._zipf = ZipfianGenerator(record_count, rng=self.rng.fork("zipf"))
        self._inserted = 0
        self._obs = obs.get()

    def _key(self, rank: int) -> bytes:
        return f"user{rank:012d}".encode()

    def _value(self, rank: int) -> bytes:
        return (f"field0={rank};".encode() * (self.value_size // 10 + 1))[: self.value_size]

    def load(self) -> None:
        """The YCSB load phase: insert every record."""
        for rank in range(self.record_count):
            self.db.put(self._key(rank), self._value(rank))
        self._inserted = self.record_count
        self.db.flush()

    def run(self, workload: YcsbWorkload, duration_s: float = 1.0) -> YcsbResult:
        """The transaction phase: run the mix for ``duration_s``."""
        if self._inserted == 0:
            raise ConfigurationError("run load() first")
        result = YcsbResult(workload=workload.name)
        clock = self.db.clock
        start = clock.now
        thresholds = (
            workload.read,
            workload.read + workload.update,
            workload.read + workload.update + workload.insert,
            workload.read + workload.update + workload.insert + workload.rmw,
        )
        tel = self._obs
        op_start = start
        try:
            while clock.now - start < duration_s:
                rank = min(self._zipf.next(), self._inserted - 1)
                key = self._key(rank)
                draw = self.rng.random()
                result.ops += 1
                if tel is not None:
                    op_start = clock.now
                if draw < thresholds[0]:
                    result.reads += 1
                    if self.db.get(key) is not None:
                        result.found += 1
                elif draw < thresholds[1]:
                    result.writes += 1
                    self.db.put(key, self._value(rank))
                elif draw < thresholds[2]:
                    result.writes += 1
                    self.db.put(self._key(self._inserted), self._value(self._inserted))
                    self._inserted += 1
                elif draw < thresholds[3]:
                    result.reads += 1
                    result.writes += 1
                    existing = self.db.get(key)
                    if existing is not None:
                        result.found += 1
                    self.db.put(key, self._value(rank))
                else:
                    result.scans += 1
                    count = 0
                    for _ in self.db.range_scan(start=key):
                        count += 1
                        if count >= workload.scan_length:
                            break
                if tel is not None:
                    done = clock.now
                    latency = done - op_start
                    tel.series.series(
                        "service/latency", kind="hist", bounds=SERVICE_LATENCY_BOUNDS_S
                    ).observe(done, latency)
                    tel.series.record("service/ops_ok", done, 1.0)
                    tel.metrics.histogram(
                        "ycsb_op_latency_seconds",
                        bounds=SERVICE_LATENCY_BOUNDS_S,
                        description="Per-operation YCSB service latency.",
                        workload=workload.name,
                    ).observe(latency)
        except _FATAL as err:
            result.aborted = True
            result.abort_reason = str(err)
            if tel is not None:
                tel.series.record("service/ops_error", clock.now, 1.0)
                tel.metrics.counter(
                    "ycsb_op_errors_total",
                    description="YCSB operations aborted by fatal storage errors.",
                    workload=workload.name,
                ).inc()
        result.elapsed_s = clock.now - start
        return result


@dataclass
class ServiceRunResult:
    """Outcome of one :func:`run_service_attack` serving simulation."""

    workload: str
    attack_start_s: float = 0.0
    attack_end_s: float = 0.0
    total_s: float = 0.0
    ops: int = 0
    errors: int = 0
    downtime_s: float = 0.0
    segments: List[YcsbResult] = field(default_factory=list)

    @property
    def attack_window(self) -> tuple:
        """(start_s, end_s) for SLO attack-window accounting."""
        return (self.attack_start_s, self.attack_end_s)


def run_service_attack(
    workload: YcsbWorkload,
    warmup_s: float = 3.0,
    attack_s: float = 4.0,
    recovery_s: float = 3.0,
    config=None,
    record_count: int = 500,
    value_size: int = 100,
    seed: int = 1,
    slice_s: float = 0.5,
    sync_writes: bool = True,
) -> ServiceRunResult:
    """A long-running KV service with one acoustic attack window.

    Builds a drive + filesystem + DB + paper coupling rig, loads the
    store, then serves ``workload`` through three phases on one virtual
    clock: warmup (quiet), attack (``config`` speaker on), recovery
    (speaker off).  Time advances in ``slice_s`` serving slices; a slice
    aborted by a fatal storage error counts as downtime — the clock is
    advanced across the dead slice and every subsequent slice of the
    phase records errors instead of silently stopping, which is what an
    operator's availability accounting would see.

    ``sync_writes`` (default on) opens the DB with per-put WAL syncs so
    every write pays real drive latency — the configuration where
    acoustic degradation shows up as windowed p99 inflation rather than
    hiding in the write buffer until a background sync stalls.

    With a telemetry bundle installed the per-op latency/throughput
    series, the ``attack.on``/``attack.off`` tracer edges, and the
    service counters come out the other end ready for
    :func:`repro.obs.slo.evaluate_slo` and the dashboard.
    """
    from repro.core.attacker import AttackConfig
    from repro.core.coupling import AttackCoupling
    from repro.hdd.drive import HardDiskDrive
    from repro.hdd.profiles import make_barracuda_profile
    from repro.sim.clock import VirtualClock
    from repro.storage.block import BlockDevice
    from repro.storage.fs.filesystem import SimFS

    if min(warmup_s, attack_s, recovery_s) < 0.0 or slice_s <= 0.0:
        raise ConfigurationError("phase durations must be >= 0 and slice_s > 0")
    attack_config = config if config is not None else AttackConfig()
    tel = obs.get()

    clock = VirtualClock()
    rng = make_rng(seed)
    drive = HardDiskDrive(
        profile=make_barracuda_profile(), clock=clock, rng=rng.fork("drive")
    )
    from repro.storage.kv.db import Options

    fs = SimFS.mkfs(BlockDevice(drive))
    db = DB.open(
        fs, "/service", options=Options(sync_writes=sync_writes), rng=rng.fork("db")
    )
    runner = YcsbRunner(
        db, record_count=record_count, value_size=value_size, rng=rng.fork("ycsb")
    )
    runner.load()
    coupling = AttackCoupling.paper_setup()

    outcome = ServiceRunResult(workload=workload.name)

    def _serve(until: float) -> None:
        while clock.now < until - 1e-9:
            segment_start = clock.now
            segment = runner.run(workload, min(slice_s, until - clock.now))
            outcome.segments.append(segment)
            outcome.ops += segment.ops
            if segment.aborted:
                outcome.errors += 1
                # A dead slice serves nothing; push the clock to the
                # slice boundary so downtime elapses instead of looping.
                remainder = segment_start + slice_s - clock.now
                if remainder > 0.0:
                    clock.advance(min(remainder, until - clock.now))
                outcome.downtime_s += clock.now - segment_start

    # Phase ends are relative to the live clock: the load phase and any
    # blocked op advance virtual time, and each phase still deserves its
    # full serving duration (most importantly recovery — the SLO
    # time-to-recover is meaningless if the attack overshoot ate it).
    _serve(clock.now + warmup_s)

    outcome.attack_start_s = clock.now
    coupling.apply(drive, attack_config)
    if tel is not None:
        tel.tracer.instant(
            "attack.on",
            clock.now,
            category="attack",
            args={
                "frequency_hz": attack_config.frequency_hz,
                "source_level_db": attack_config.source_level_db,
            },
        )
    _serve(outcome.attack_start_s + attack_s)

    outcome.attack_end_s = clock.now
    coupling.apply(drive, None)
    if tel is not None:
        tel.tracer.instant("attack.off", clock.now, category="attack", args={})
    _serve(outcome.attack_end_s + recovery_s)

    outcome.total_s = clock.now
    return outcome
