"""Workload generators and measurement tools.

``fio`` mirrors the Flexible I/O Tester used in Section 4 (sequential
read/write at 4 KiB granularity, throughput and latency reporting);
``db_bench`` mirrors RocksDB's benchmark with the ``readwhilewriting``
workload used for Table 2.
"""

from .fio import FioJob, FioResult, FioTester, IOMode
from .trace import IOTrace, TraceRecord, TraceReplayer, synthesize_trace

__all__ = [
    "FioJob",
    "FioResult",
    "FioTester",
    "IOMode",
    "IOTrace",
    "TraceRecord",
    "TraceReplayer",
    "synthesize_trace",
    "DbBench",
    "DbBenchResult",
    "YcsbRunner",
    "YcsbWorkload",
    "YcsbResult",
    "ZipfianGenerator",
    "WORKLOADS",
]


def __getattr__(name: str):
    # db_bench and ycsb pull in the key-value store; import them lazily
    # so FIO users don't pay for the whole LSM stack.
    if name in ("DbBench", "DbBenchResult"):
        from . import db_bench

        return getattr(db_bench, name)
    if name in ("YcsbRunner", "YcsbWorkload", "YcsbResult", "ZipfianGenerator", "WORKLOADS"):
        from . import ycsb

        return getattr(ycsb, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
