"""I/O trace capture and replay.

Lets experiments exercise drives with recorded (or synthesized) request
streams instead of FIO's fixed patterns: capture a trace from any
workload, save/load it as text, and replay it against a fresh drive —
with or without an attack — comparing completion statistics.  This is
the mechanism behind "replayable victim workloads" in the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import ConfigurationError, DriveError
from repro.hdd.drive import HardDiskDrive
from repro.hdd.servo import OpKind
from repro.rng import ReproRandom, make_rng

__all__ = ["TraceRecord", "IOTrace", "TraceReplayer", "synthesize_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One request: issue time (relative), op, LBA, sector count."""

    issue_at_s: float
    op: OpKind
    lba: int
    sectors: int

    def __post_init__(self) -> None:
        if self.issue_at_s < 0.0:
            raise ConfigurationError(f"issue time must be non-negative: {self.issue_at_s}")
        if self.sectors <= 0:
            raise ConfigurationError(f"sector count must be positive: {self.sectors}")

    def to_line(self) -> str:
        """One-line text form: ``time op lba sectors``.

        Times use repr precision so load(dump(trace)) is exact.
        """
        return f"{self.issue_at_s!r} {self.op.value} {self.lba} {self.sectors}"

    @staticmethod
    def from_line(line: str) -> "TraceRecord":
        """Inverse of :meth:`to_line`."""
        parts = line.split()
        if len(parts) != 4:
            raise ConfigurationError(f"malformed trace line: {line!r}")
        try:
            return TraceRecord(
                issue_at_s=float(parts[0]),
                op=OpKind(parts[1]),
                lba=int(parts[2]),
                sectors=int(parts[3]),
            )
        except (ValueError, KeyError) as exc:
            raise ConfigurationError(f"malformed trace line: {line!r}") from exc


class IOTrace:
    """An ordered request stream."""

    def __init__(self, records: Optional[Iterable[TraceRecord]] = None) -> None:
        self.records: List[TraceRecord] = list(records or [])
        if any(
            b.issue_at_s < a.issue_at_s
            for a, b in zip(self.records, self.records[1:])
        ):
            raise ConfigurationError("trace records must be time-ordered")

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: TraceRecord) -> None:
        """Add a record (must not go back in time)."""
        if self.records and record.issue_at_s < self.records[-1].issue_at_s:
            raise ConfigurationError("trace records must be time-ordered")
        self.records.append(record)

    @property
    def duration_s(self) -> float:
        """Issue time of the final request."""
        return self.records[-1].issue_at_s if self.records else 0.0

    def bytes_requested(self) -> int:
        """Total payload bytes across all requests."""
        return sum(r.sectors * 512 for r in self.records)

    # -- text serialization -------------------------------------------------------

    def dumps(self) -> str:
        """Serialize to the one-line-per-record text format."""
        return "\n".join(r.to_line() for r in self.records) + ("\n" if self.records else "")

    @staticmethod
    def loads(text: str) -> "IOTrace":
        """Parse the text format (blank lines and # comments skipped)."""
        records = [
            TraceRecord.from_line(line)
            for line in text.splitlines()
            if line.strip() and not line.lstrip().startswith("#")
        ]
        return IOTrace(records)


@dataclass
class ReplayResult:
    """Outcome of replaying a trace."""

    completed: int = 0
    errors: int = 0
    timeouts: int = 0
    bytes_moved: int = 0
    elapsed_s: float = 0.0
    total_latency_s: float = 0.0

    @property
    def completion_fraction(self) -> float:
        """Fraction of requests that completed."""
        total = self.completed + self.errors + self.timeouts
        return self.completed / total if total else 0.0

    @property
    def throughput_mbps(self) -> float:
        """Decimal MB/s over the replay."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_moved / 1e6 / self.elapsed_s


class TraceReplayer:
    """Replays a trace against a drive on its virtual clock.

    Open-loop replay: each request is issued at its recorded time (the
    clock skips idle gaps); if the device is still busy past the issue
    time the request goes out immediately after (closed-loop backlog),
    like ``fio --read_iolog`` replay.
    """

    def __init__(self, drive: HardDiskDrive) -> None:
        self.drive = drive

    def replay(self, trace: IOTrace) -> ReplayResult:
        """Run the whole trace; returns aggregate statistics."""
        result = ReplayResult()
        clock = self.drive.clock
        start = clock.now
        for record in trace.records:
            target = start + record.issue_at_s
            if clock.now < target:
                clock.advance(target - clock.now)
            try:
                if record.op is OpKind.WRITE:
                    io = self.drive.write(record.lba, record.sectors)
                else:
                    io, _ = self.drive.read(record.lba, record.sectors)
            except DriveError as err:
                from repro.errors import DriveTimeout

                if isinstance(err, DriveTimeout):
                    result.timeouts += 1
                else:
                    result.errors += 1
                continue
            result.completed += 1
            result.bytes_moved += record.sectors * 512
            result.total_latency_s += io.latency_s
        result.elapsed_s = clock.now - start
        return result


def synthesize_trace(
    duration_s: float = 1.0,
    iops: float = 2000.0,
    write_fraction: float = 0.5,
    sequential_fraction: float = 0.8,
    region_sectors: int = 16 * 1024 * 1024,
    block_sectors: int = 8,
    rng: Optional[ReproRandom] = None,
) -> IOTrace:
    """Generate a mixed sequential/random read/write trace."""
    if duration_s <= 0.0 or iops <= 0.0:
        raise ConfigurationError("duration and iops must be positive")
    if not 0.0 <= write_fraction <= 1.0 or not 0.0 <= sequential_fraction <= 1.0:
        raise ConfigurationError("fractions must be in [0, 1]")
    rng = rng if rng is not None else make_rng().fork("trace")
    trace = IOTrace()
    cursor = 0
    time = 0.0
    interval = 1.0 / iops
    while time < duration_s:
        op = OpKind.WRITE if rng.chance(write_fraction) else OpKind.READ
        if rng.chance(sequential_fraction):
            lba = cursor
            cursor = (cursor + block_sectors) % (region_sectors - block_sectors)
        else:
            lba = rng.randint(0, (region_sectors - block_sectors) // block_sectors) * block_sectors
        trace.append(TraceRecord(time, op, lba, block_sectors))
        time += interval
    return trace
