"""A ``db_bench`` equivalent for the simulated key-value store.

Implements the workloads the paper uses: ``fillseq``/``fillrandom`` to
preload, and ``readwhilewriting`` — RocksDB's standard mixed workload
with one writer and several readers — whose throughput (MB/s) and I/O
rate (ops/s) are the two columns of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import (
    BlockIOError,
    ConfigurationError,
    DatabaseClosed,
    DriveError,
    KVStoreError,
    ReproError,
    WALSyncError,
)
from repro.rng import ReproRandom, make_rng
from repro.storage.kv.db import DB, WriteBatch

__all__ = ["DbBenchConfig", "DbBenchResult", "DbBench"]

#: Errors that end a benchmark run (the store or drive died).
_FATAL = (WALSyncError, DatabaseClosed, BlockIOError, DriveError)


@dataclass
class DbBenchConfig:
    """Workload shape, named after db_bench flags."""

    num_preload: int = 10_000
    key_size: int = 16
    value_size: int = 64
    readers: int = 3
    duration_s: float = 2.0
    write_rate_limit_ops: Optional[float] = None
    seed_label: str = "db_bench"

    def __post_init__(self) -> None:
        if self.num_preload < 0:
            raise ConfigurationError("preload count must be non-negative")
        if self.key_size < 8 or self.value_size <= 0:
            raise ConfigurationError("bad key/value sizing")
        if self.readers < 0:
            raise ConfigurationError("reader count must be non-negative")
        if self.duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")


@dataclass
class DbBenchResult:
    """Aggregated outcome of one benchmark run."""

    workload: str
    ops: int = 0
    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    elapsed_s: float = 0.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def ops_per_second(self) -> float:
        """The paper's "I/O rate" column."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.ops / self.elapsed_s

    @property
    def throughput_mbps(self) -> float:
        """The paper's "Throughput (MB/s)" column (decimal MB)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.bytes_moved / 1e6 / self.elapsed_s


class DbBench:
    """Runs benchmark workloads against one DB instance."""

    def __init__(self, db: DB, config: Optional[DbBenchConfig] = None, rng: Optional[ReproRandom] = None) -> None:
        self.db = db
        self.config = config if config is not None else DbBenchConfig()
        self.rng = rng if rng is not None else make_rng().fork(self.config.seed_label)
        self._loaded_keys = 0

    # -- key/value generation -----------------------------------------------------

    def _key(self, index: int) -> bytes:
        return f"{index:0{self.config.key_size}d}".encode()[: self.config.key_size]

    def _value(self, index: int) -> bytes:
        seed = (index * 2654435761) & 0xFFFFFFFF
        unit = seed.to_bytes(4, "little")
        repeated = unit * (self.config.value_size // 4 + 1)
        return repeated[: self.config.value_size]

    # -- workloads -------------------------------------------------------------------

    def fill_seq(self, count: Optional[int] = None) -> DbBenchResult:
        """Preload ``count`` sequential keys (db_bench fillseq)."""
        n = self.config.num_preload if count is None else count
        result = DbBenchResult(workload="fillseq")
        start = self.db.clock.now
        try:
            for index in range(n):
                self.db.put(self._key(index), self._value(index))
                result.writes += 1
                result.ops += 1
                result.bytes_moved += self.config.key_size + self.config.value_size
        except _FATAL as err:
            result.aborted = True
            result.abort_reason = str(err)
        self._loaded_keys = max(self._loaded_keys, result.writes)
        result.elapsed_s = self.db.clock.now - start
        return result

    def read_random(self, count: int = 10_000) -> DbBenchResult:
        """Point-read random known keys (db_bench readrandom)."""
        if self._loaded_keys == 0:
            raise ConfigurationError("preload the database first (fill_seq)")
        result = DbBenchResult(workload="readrandom")
        start = self.db.clock.now
        try:
            for _ in range(count):
                index = self.rng.randint(0, self._loaded_keys - 1)
                value = self.db.get(self._key(index))
                result.reads += 1
                result.ops += 1
                if value is not None:
                    result.bytes_moved += self.config.key_size + len(value)
        except _FATAL as err:
            result.aborted = True
            result.abort_reason = str(err)
        result.elapsed_s = self.db.clock.now - start
        return result

    def read_while_writing(self, duration_s: Optional[float] = None) -> DbBenchResult:
        """The paper's Table 2 workload: concurrent readers + one writer.

        Each scheduling round interleaves ``readers`` point reads with
        one write, mirroring db_bench's thread mix on a single virtual
        timeline.  An optional writer rate limit (ops/s) paces the
        writer, modelling ``-benchmark_write_rate_limit``.
        """
        if self._loaded_keys == 0:
            raise ConfigurationError("preload the database first (fill_seq)")
        window = self.config.duration_s if duration_s is None else duration_s
        result = DbBenchResult(workload="readwhilewriting")
        clock = self.db.clock
        start = clock.now
        next_write_index = self._loaded_keys
        try:
            while clock.now - start < window:
                # Writer (possibly rate limited).
                limit = self.config.write_rate_limit_ops
                allowed = (
                    limit is None
                    or result.writes < limit * (clock.now - start) + 1.0
                )
                if allowed:
                    self.db.put(
                        self._key(next_write_index), self._value(next_write_index)
                    )
                    next_write_index += 1
                    result.writes += 1
                    result.ops += 1
                    result.bytes_moved += (
                        self.config.key_size + self.config.value_size
                    )
                else:
                    # Writer throttled: let virtual time tick forward.
                    clock.advance(1.0e-4)
                # Readers.
                for _ in range(self.config.readers):
                    index = self.rng.randint(0, next_write_index - 1)
                    value = self.db.get(self._key(index))
                    result.reads += 1
                    result.ops += 1
                    if value is not None:
                        result.bytes_moved += self.config.key_size + len(value)
        except _FATAL as err:
            result.aborted = True
            result.abort_reason = str(err)
        result.elapsed_s = clock.now - start
        return result
