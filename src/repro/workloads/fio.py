"""A Flexible I/O Tester (FIO) equivalent for the simulated drive.

The paper measures HDD availability with FIO sequential read and
sequential write workloads at 4 KB access granularity, reporting
throughput (MB/s) and latency (ms).  ``FioTester`` reproduces that
measurement loop on the virtual clock: it issues blocking I/O for a
fixed runtime and aggregates completions, errors, and timeouts.  A run
in which nothing completes reports ``responded=False`` — rendered as
the paper's "-" (no response) entries.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from typing import List, MutableSequence, Optional

from repro import perf, vecphys
from repro.analysis.stats import percentile
from repro.errors import ConfigurationError, DriveTimeout, MediumError
from repro.hdd.drive import HardDiskDrive
from repro.obs import telemetry as obs
from repro.rng import ReproRandom, make_rng
from repro.units import BLOCK_4K, SECTOR_SIZE

__all__ = ["IOMode", "FioJob", "FioResult", "FioTester"]


class IOMode(enum.Enum):
    """FIO-style workload modes."""

    SEQ_READ = "read"
    SEQ_WRITE = "write"
    RAND_READ = "randread"
    RAND_WRITE = "randwrite"

    @property
    def is_write(self) -> bool:
        """True for the write modes."""
        return self in (IOMode.SEQ_WRITE, IOMode.RAND_WRITE)

    @property
    def is_random(self) -> bool:
        """True for the random-offset modes."""
        return self in (IOMode.RAND_READ, IOMode.RAND_WRITE)


@dataclass(frozen=True)
class FioJob:
    """One FIO job description.

    Attributes:
        mode: access pattern.
        block_bytes: access granularity (the paper uses 4 KiB).
        runtime_s: how long (virtual seconds) to keep issuing I/O.
        region_start_lba: first LBA of the target region.
        region_sectors: size of the region (wraps for sequential jobs);
            defaults to 8 GiB worth of sectors at the drive's start.
        name: label for reports.
    """

    mode: IOMode = IOMode.SEQ_READ
    block_bytes: int = BLOCK_4K
    runtime_s: float = 5.0
    region_start_lba: int = 0
    region_sectors: int = 16 * 1024 * 1024  # 8 GiB of 512-byte sectors
    name: str = "fio-job"

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.block_bytes % SECTOR_SIZE != 0:
            raise ConfigurationError(
                f"block size must be a positive multiple of {SECTOR_SIZE}: "
                f"{self.block_bytes}"
            )
        if self.runtime_s <= 0.0:
            raise ConfigurationError(f"runtime must be positive: {self.runtime_s}")
        if self.region_start_lba < 0 or self.region_sectors <= 0:
            raise ConfigurationError("invalid target region")

    @property
    def sectors_per_block(self) -> int:
        """Sectors per access."""
        return self.block_bytes // SECTOR_SIZE


@dataclass
class FioResult:
    """Aggregated outcome of one FIO run."""

    job: FioJob
    completed_ops: int = 0
    error_ops: int = 0
    timeout_ops: int = 0
    bytes_moved: int = 0
    busy_time_s: float = 0.0
    total_latency_s: float = 0.0
    max_latency_s: float = 0.0
    #: Stored as a compact ``array('d')`` rather than a list of boxed
    #: floats: long runs append one latency per completed op, and the
    #: flat array keeps that streaming-friendly (8 bytes/op, no
    #: per-element object churn).
    latencies_s: MutableSequence[float] = field(default_factory=lambda: array("d"))

    @property
    def responded(self) -> bool:
        """False when the drive never completed a single request."""
        return self.completed_ops > 0

    @property
    def throughput_mbps(self) -> float:
        """Decimal MB/s over the busy time (FIO's bandwidth number)."""
        if self.busy_time_s <= 0.0 or self.bytes_moved == 0:
            return 0.0
        return self.bytes_moved / 1e6 / self.busy_time_s

    @property
    def iops(self) -> float:
        """Completed operations per second."""
        if self.busy_time_s <= 0.0:
            return 0.0
        return self.completed_ops / self.busy_time_s

    @property
    def avg_latency_s(self) -> Optional[float]:
        """Mean completion latency, or None in the no-response regime."""
        if self.completed_ops == 0:
            return None
        return self.total_latency_s / self.completed_ops

    @property
    def avg_latency_ms(self) -> Optional[float]:
        """Mean latency in milliseconds (None = the paper's "-")."""
        latency = self.avg_latency_s
        return None if latency is None else latency * 1e3

    def latency_percentile_ms(self, pct: float) -> Optional[float]:
        """Completion-latency percentile in ms (fio's clat percentiles).

        None in the no-response regime.
        """
        if not self.latencies_s:
            return None
        return percentile(self.latencies_s, pct) * 1e3

    def latency_summary_ms(self) -> "Optional[dict]":
        """p50/p95/p99/max in milliseconds, or None if nothing completed."""
        if not self.latencies_s:
            return None
        return {
            "p50": self.latency_percentile_ms(50.0),
            "p95": self.latency_percentile_ms(95.0),
            "p99": self.latency_percentile_ms(99.0),
            "max": self.max_latency_s * 1e3,
        }


class FioTester:
    """Runs FIO jobs against a simulated drive on its virtual clock."""

    def __init__(self, drive: HardDiskDrive, rng: Optional[ReproRandom] = None) -> None:
        self.drive = drive
        self.rng = rng if rng is not None else make_rng().fork("fio")
        self._obs = obs.get()
        self._vec = perf.vec_physics_enabled() and vecphys.available()

    def _next_lba(self, job: FioJob, cursor: int) -> int:
        region_end = min(
            job.region_start_lba + job.region_sectors, self.drive.total_sectors
        )
        span_blocks = (region_end - job.region_start_lba) // job.sectors_per_block
        if span_blocks <= 0:
            raise ConfigurationError("target region smaller than one block")
        if job.mode.is_random:
            index = self.rng.randint(0, span_blocks - 1)
        else:
            index = cursor % span_blocks
        return job.region_start_lba + index * job.sectors_per_block

    def run(self, job: FioJob) -> FioResult:
        """Execute ``job`` for its runtime and return the aggregate result.

        The per-op invariants (target-region span, mode dispatch, bound
        methods) are hoisted out of the issue loop, and latency
        aggregation streams into locals + a flat array — a campaign
        evaluates this loop thousands of times per point.
        """
        result = FioResult(job=job)
        clock = self.drive.clock
        start = clock.now
        cursor = 0
        region_start = job.region_start_lba
        region_end = min(region_start + job.region_sectors, self.drive.total_sectors)
        sectors_per_block = job.sectors_per_block
        span_blocks = (region_end - region_start) // sectors_per_block
        if span_blocks <= 0:
            raise ConfigurationError("target region smaller than one block")
        if self._vec and not job.mode.is_random:
            # Healthy-regime sequential runs collapse to a closed-form
            # arithmetic series; degraded/stalled points return None
            # here and take the scalar issue loop below.
            vec_result = vecphys.run_sequential_static(self, job, result)
            if vec_result is not None:
                return vec_result
        is_random = job.mode.is_random
        is_write = job.mode.is_write
        runtime_s = job.runtime_s
        elapsed_since = clock.elapsed_since
        randint = self.rng.randint
        write = self.drive.write
        read = self.drive.read
        latencies = result.latencies_s
        append_latency = latencies.append
        completed_ops = 0
        timeout_ops = 0
        error_ops = 0
        total_latency = 0.0
        max_latency = 0.0
        while elapsed_since(start) < runtime_s:
            if is_random:
                index = randint(0, span_blocks - 1)
            else:
                index = cursor % span_blocks
            lba = region_start + index * sectors_per_block
            cursor += 1
            try:
                if is_write:
                    io = write(lba, sectors_per_block)
                else:
                    io, _ = read(lba, sectors_per_block)
            except DriveTimeout:
                timeout_ops += 1
                continue
            except MediumError:
                error_ops += 1
                continue
            completed_ops += 1
            latency = io.latency_s
            total_latency += latency
            if latency > max_latency:
                max_latency = latency
            append_latency(latency)
        result.completed_ops = completed_ops
        result.timeout_ops = timeout_ops
        result.error_ops = error_ops
        result.bytes_moved = completed_ops * job.block_bytes
        result.total_latency_s = total_latency
        result.max_latency_s = max_latency
        result.busy_time_s = clock.elapsed_since(start)
        tel = self._obs
        if tel is not None:
            # Aggregates only, pushed after the loop: the per-op issue
            # path stays exactly as hot as with telemetry off (the
            # drive records the per-command spans).
            tel.tracer.record(
                f"fio.{job.mode.value}",
                start,
                clock.now,
                category="fio",
                status="ok" if result.responded else "error",
                args={
                    "completed": completed_ops,
                    "timeouts": timeout_ops,
                    "errors": error_ops,
                },
            )
            metrics = tel.metrics
            mode = job.mode.value
            metrics.counter("fio_ops_total", mode=mode, outcome="completed").inc(
                completed_ops
            )
            metrics.counter("fio_ops_total", mode=mode, outcome="timeout").inc(
                timeout_ops
            )
            metrics.counter("fio_ops_total", mode=mode, outcome="error").inc(error_ops)
            metrics.counter("fio_bytes_total", mode=mode).inc(result.bytes_moved)
            histogram = metrics.histogram("fio_op_latency_s", mode=mode)
            for latency in latencies:
                histogram.observe(latency)
        return result

    def run_suite(self, jobs: List[FioJob]) -> List[FioResult]:
        """Run several jobs back-to-back (drive state carries over)."""
        return [self.run(job) for job in jobs]
