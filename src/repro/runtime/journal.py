"""The durable checkpoint journal: interrupt any campaign, resume it.

The result cache (:mod:`repro.runtime.cache`) already memoizes point
*values*; the journal adds what a resumable campaign needs on top:

* a **campaign fingerprint header** so ``--resume`` refuses to mix
  measurements from different physics inputs
  (:class:`~repro.errors.ResumeMismatch`);
* an **append-only per-point completion log** — one JSON line per
  finished point, ``fsync``'d before the runner moves on, so a ``kill
  -9`` at any instant loses at most the point in flight;
* **typed failure rows** — a point that exhausted its retries is a
  durable outcome too, honored on resume instead of silently re-run.

Format (JSON lines)::

    {"format": "deepnote-journal", "version": 1, "campaign": "<hex>"}
    {"type": "point", "key": "<hex>", "label": "...", "status": "ok",
     "value": {...}}
    {"type": "point", "key": "<hex>", "label": "...", "status": "failed",
     "failure": {...}}

Recovery: a torn tail (the classic crash-during-append) is detected on
load and truncated away; anything before it is trusted.  A corrupt or
foreign *header* is refused — resuming from a journal whose provenance
is unknown would be worse than re-measuring.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError, ResumeMismatch
from repro.runtime.retry import PointFailure

__all__ = ["CampaignJournal"]

_FORMAT = "deepnote-journal"
_VERSION = 1


class CampaignJournal:
    """Append-only, fsync'd completion log for one campaign.

    Args:
        path: journal file location (conventionally
            ``<cache-dir>/journal.jsonl``, next to the result cache).
        campaign: fingerprint of the campaign's physics inputs; written
            into the header and checked on resume.
        resume: load an existing journal (if any) instead of starting
            fresh.  A missing file resumes into a fresh journal; a
            header that disagrees with ``campaign`` raises
            :class:`~repro.errors.ResumeMismatch`.
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        campaign: str,
        resume: bool = False,
    ) -> None:
        if not campaign:
            raise ConfigurationError("a journal needs a campaign fingerprint")
        self.path = pathlib.Path(path)
        self.campaign = campaign
        self.resumed = False
        self._records: Dict[str, Dict[str, Any]] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
            self._handle = self.path.open("a", encoding="utf-8")
            self.resumed = True
        else:
            self._handle = self.path.open("w", encoding="utf-8")
            self._append(
                {"format": _FORMAT, "version": _VERSION, "campaign": campaign}
            )

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        """Read the valid prefix; truncate a torn or corrupt tail."""
        with self.path.open("rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        header_line = lines[0] if lines else b""
        try:
            header = json.loads(header_line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ResumeMismatch(
                f"journal {self.path} has an unreadable header; refusing to "
                "resume from it (delete the file to start fresh)"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("format") != _FORMAT
            or header.get("version") != _VERSION
        ):
            raise ResumeMismatch(
                f"journal {self.path} is not a version-{_VERSION} "
                f"{_FORMAT} file; refusing to resume from it"
            )
        if header.get("campaign") != self.campaign:
            raise ResumeMismatch(
                f"journal {self.path} belongs to campaign "
                f"{header.get('campaign')!r}, not {self.campaign!r}; "
                "refusing to mix measurements (delete the journal or drop "
                "--resume to start fresh)"
            )
        valid_bytes = len(header_line) + 1
        for line in lines[1:]:
            if not line:
                # Either the file's trailing newline or an empty torn
                # tail; only count it if more records follow.
                if valid_bytes < len(raw):
                    valid_bytes += 1
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break  # torn tail: trust everything before it
            if (
                not isinstance(record, dict)
                or record.get("type") != "point"
                or not isinstance(record.get("key"), str)
                or record.get("status") not in ("ok", "failed")
            ):
                break
            self._records[record["key"]] = record
            valid_bytes += len(line) + 1
        if valid_bytes < len(raw):
            with self.path.open("r+b") as handle:
                handle.truncate(valid_bytes)

    # -- queries -----------------------------------------------------------

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The completion record for ``key`` from a resumed run, or None."""
        return self._records.get(key)

    def __len__(self) -> int:
        """Completion records loaded from a resumed journal."""
        return len(self._records)

    # -- appends -----------------------------------------------------------

    def record_ok(self, key: str, label: str, value: Dict[str, Any]) -> None:
        """Journal a successful point (fsync'd before returning)."""
        self._append(
            {"type": "point", "key": key, "label": label, "status": "ok", "value": value}
        )

    def record_failure(self, key: str, failure: PointFailure) -> None:
        """Journal an exhausted-retries point as a durable outcome."""
        self._append(
            {
                "type": "point",
                "key": key,
                "label": failure.label,
                "status": "failed",
                "failure": failure.to_payload(),
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
