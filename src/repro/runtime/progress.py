"""Campaign progress and throughput reporting.

Replaces the ad-hoc ``progress`` callback that
:meth:`~repro.core.attack.AttackSession.frequency_sweep` used to take:
the runner drives a :class:`ProgressReporter` that prints measured
points per second and an ETA, and distinguishes fresh measurements from
cache hits.  Output goes to ``stderr`` by default so piped CSV/table
output stays clean.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

__all__ = ["ProgressReporter", "wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-time read for driver-level code.

    The one sanctioned wall-clock accessor for code outside ``runtime/``
    (report footers, CLI progress): importing this instead of reading
    :mod:`time` directly keeps deepcheck's DC01 scope airtight —
    simulation modules never touch the wall clock, and every legitimate
    wall-time consumer is findable from here.
    """
    return time.monotonic()

#: Sentinel distinguishing "default to stderr" from an explicit None.
_STDERR = object()


def _format_eta(seconds: float) -> str:
    if seconds < 0.0 or seconds != seconds:  # negative or NaN
        return "--"
    if seconds < 59.95:
        # Anything that would render as "60.0s" belongs in the minute
        # branch below (no more "60.0s" / "59m60s" carry artifacts).
        return f"{seconds:.1f}s"
    total_minutes, rest = divmod(int(round(seconds)), 60)
    if total_minutes < 60:
        return f"{total_minutes}m{rest:02d}s"
    hours, minutes = divmod(total_minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Tracks completed points and reports throughput + ETA.

    Args:
        total: number of points in the campaign.
        label: campaign name shown in every line.
        stream: destination (default ``sys.stderr``); None silences
            output while still keeping counters, which is what the
            library tests use.
        min_interval_s: wall-time throttle between printed lines (the
            final summary always prints).
        time_fn: monotonic time source, injectable for tests.
        telemetry: optional :class:`~repro.obs.telemetry.Telemetry`
            bundle; each advanced point bumps
            ``campaign_points_total{source="fresh"|"cached"}`` on its
            metrics registry.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream: object = _STDERR,
        min_interval_s: float = 0.5,
        time_fn: Callable[[], float] = time.monotonic,
        telemetry=None,
    ) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream: Optional[TextIO] = sys.stderr if stream is _STDERR else stream
        self.min_interval_s = min_interval_s
        self._time_fn = time_fn
        self.telemetry = telemetry
        self.completed = 0
        self.cached = 0
        self.resumed = 0
        self.failed = 0
        self.retries = 0
        self._started_at: Optional[float] = None
        self._last_emit_at = float("-inf")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Mark the campaign start (idempotent)."""
        if self._started_at is None:
            self._started_at = self._time_fn()

    def advance(
        self, cached: bool = False, resumed: bool = False, failed: bool = False
    ) -> None:
        """Record one completed point.

        ``cached`` = served from the result cache, ``resumed`` = served
        from a resumed checkpoint journal, ``failed`` = the point
        degraded to a recorded failure row (it still counts as
        completed: the campaign moved past it).
        """
        self.start()
        self.completed += 1
        if cached:
            self.cached += 1
        if resumed:
            self.resumed += 1
        if failed:
            self.failed += 1
        if self.telemetry is not None:
            source = "fresh"
            if cached:
                source = "cached"
            elif resumed:
                source = "resumed"
            self.telemetry.metrics.counter(
                "campaign_points_total", label=self.label, source=source
            ).inc()
        now = self._time_fn()
        if self.completed >= self.total or now - self._last_emit_at >= self.min_interval_s:
            self._last_emit_at = now
            self._emit(now)

    def note_retry(self) -> None:
        """Record one retried attempt (does not advance completion)."""
        self.retries += 1

    def finish(self) -> str:
        """Print and return the final summary line."""
        self.start()
        line = self.summary()
        self._write(line)
        return line

    # -- reporting ---------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Seconds since :meth:`start`."""
        if self._started_at is None:
            return 0.0
        return max(0.0, self._time_fn() - self._started_at)

    @property
    def points_per_second(self) -> float:
        """Completed points per wall second so far."""
        elapsed = self.elapsed_s
        if elapsed <= 0.0:
            return 0.0
        return self.completed / elapsed

    @property
    def fresh(self) -> int:
        """Points actually measured (not served from cache or journal)."""
        return self.completed - self.cached - self.resumed

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of completed points served from the cache."""
        if self.completed == 0:
            return 0.0
        return self.cached / self.completed

    @property
    def eta_s(self) -> float:
        """Estimated seconds remaining at the current rate.

        0.0 once nothing remains (including the ``total=0`` campaign);
        NaN while no rate is measurable yet.
        """
        if self.total <= self.completed:
            return 0.0
        rate = self.points_per_second
        if rate <= 0.0:
            return float("nan")
        return (self.total - self.completed) / rate

    def summary(self) -> str:
        """One-line campaign summary: fresh and cached rates separately.

        Resume, retry, and failure counts only appear when non-zero so
        the healthy-path line stays unchanged.
        """
        extras = ""
        if self.resumed:
            extras += f", {self.resumed} resumed"
        if self.retries:
            extras += f", {self.retries} retries"
        if self.failed:
            extras += f", {self.failed} failed"
        return (
            f"[{self.label}] {self.completed}/{self.total} points in "
            f"{self.elapsed_s:.1f}s ({self.points_per_second:.1f} points/s: "
            f"{self.fresh} fresh, {self.cached} from cache "
            f"[{100.0 * self.cache_hit_rate:.0f}% hit]{extras})"
        )

    def _emit(self, now: float) -> None:
        rate = self.points_per_second
        self._write(
            f"[{self.label}] {self.completed}/{self.total} points  "
            f"{rate:.1f} points/s  ETA {_format_eta(self.eta_s)}"
        )

    def _write(self, line: str) -> None:
        if self.stream is None:
            return
        try:
            self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: keep measuring
            pass
