"""Parallel campaign execution, memoization, checkpointing, progress.

The experiments of Sections 4–5 are grids of independent measurements;
this package runs those grids as fast as the hardware allows — and
keeps running them when the hardware (or the operator) misbehaves:

* :class:`SweepRunner` — fans points over a process pool with
  deterministic per-point seeding (``workers=1`` keeps the exact
  sequential path, so parallel and serial runs are bit-identical);
* :class:`ResultCache` — on-disk memoization keyed by
  :func:`fingerprint` over (scenario, attack config, job params, seed);
* :class:`CampaignJournal` — fsync'd per-point completion log with a
  campaign fingerprint header; a killed campaign resumes byte-identical;
* :class:`RetryPolicy` / :class:`PointFailure` — bounded retries with
  deterministic backoff, graceful degradation to recorded failure rows;
* :class:`FaultPlan` — scripted worker faults (fail/hang/slow/kill) so
  the resilience layer is testable on schedule;
* :class:`ProgressReporter` — points/s and ETA reporting.
"""

from .cache import ResultCache, ResultCacheStats
from .faultinject import FaultAction, FaultPlan, apply_fault
from .fingerprint import canonical, fingerprint
from .journal import CampaignJournal
from .progress import ProgressReporter
from .retry import PointFailure, RetryPolicy
from .runner import SweepRunner, make_runner

__all__ = [
    "CampaignJournal",
    "FaultAction",
    "FaultPlan",
    "PointFailure",
    "ProgressReporter",
    "ResultCache",
    "ResultCacheStats",
    "RetryPolicy",
    "SweepRunner",
    "apply_fault",
    "canonical",
    "fingerprint",
    "make_runner",
]
