"""Parallel campaign execution, result memoization, and progress.

The experiments of Sections 4–5 are grids of independent measurements;
this package runs those grids as fast as the hardware allows:

* :class:`SweepRunner` — fans points over a process pool with
  deterministic per-point seeding (``workers=1`` keeps the exact
  sequential path, so parallel and serial runs are bit-identical);
* :class:`ResultCache` — on-disk memoization keyed by
  :func:`fingerprint` over (scenario, attack config, job params, seed);
* :class:`ProgressReporter` — points/s and ETA reporting.
"""

from .cache import ResultCache, ResultCacheStats
from .fingerprint import canonical, fingerprint
from .progress import ProgressReporter
from .runner import SweepRunner, make_runner

__all__ = [
    "ResultCache",
    "ResultCacheStats",
    "ProgressReporter",
    "SweepRunner",
    "canonical",
    "fingerprint",
    "make_runner",
]
