"""Compact pool transport for hot campaign row types.

The process-pool runner ships every point's ``(result, trace snapshot,
metrics snapshot)`` triple back to the parent pickled.  For the hot
figure2/fleet row types — tiny frozen dataclasses of a few floats — the
pickle framing (class references, memo tables, per-object opcodes)
dwarfs the payload, and on small grids that IPC cost dominates the
batched physics.  This module packs homogeneous batches of registered
row types into one :mod:`struct` byte string instead: a few dozen bytes
per row, no per-row object graph, and exact float64 bit patterns (so
the runner's bit-identity guarantees are untouched).

Only telemetry-free batches pack — a batch carrying trace or metric
snapshots, mixed row types, or any unregistered type falls back to the
plain pickled list unchanged.  Codecs are registered by the module that
defines the row type (``repro.core.attack`` for ``SweepPoint``,
``repro.core.fleet`` for ``BaySweepPoint``), so any process that can
*produce* the rows can also decode them.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "RowCodec",
    "register_row_codec",
    "codec_for_type",
    "pack_outcomes",
    "maybe_unpack",
]

#: First element of a packed payload tuple; versioned so a future layout
#: change cannot be misread by an old parent.
PACKED_MARKER = "__repro_packed_rows_v1__"

#: struct format codes a row field may use: float64 and int64 cover the
#: hot row types; both round-trip their Python values exactly.
_ALLOWED_FORMATS = {"d", "q"}


class RowCodec:
    """Fixed-layout struct codec for one frozen-dataclass row type."""

    def __init__(
        self,
        codec_id: str,
        row_type: type,
        fields: Sequence[Tuple[str, str]],
    ) -> None:
        if not fields:
            raise ConfigurationError(f"row codec {codec_id!r} needs fields")
        for name, fmt in fields:
            if fmt not in _ALLOWED_FORMATS:
                raise ConfigurationError(
                    f"row codec {codec_id!r} field {name!r}: "
                    f"format {fmt!r} not in {sorted(_ALLOWED_FORMATS)}"
                )
        self.codec_id = codec_id
        self.row_type = row_type
        self.fields = tuple((name, fmt) for name, fmt in fields)
        self.names = tuple(name for name, _ in self.fields)
        # Explicit little-endian, standard sizes: unambiguous on the
        # wire regardless of host ABI padding.
        self._struct = struct.Struct("<" + "".join(fmt for _, fmt in self.fields))

    def pack(self, rows: Sequence[object]) -> bytes:
        """Rows -> bytes.  Raises struct.error on out-of-range values."""
        pack_into = self._struct.pack_into
        size = self._struct.size
        names = self.names
        out = bytearray(size * len(rows))
        offset = 0
        for row in rows:
            pack_into(out, offset, *[getattr(row, name) for name in names])
            offset += size
        return bytes(out)

    def unpack(self, payload: bytes) -> List[object]:
        """Bytes -> freshly constructed rows."""
        if len(payload) % self._struct.size != 0:
            raise ConfigurationError(
                f"row codec {self.codec_id!r}: payload of {len(payload)} bytes "
                f"is not a multiple of the {self._struct.size}-byte row"
            )
        row_type = self.row_type
        return [row_type(*values) for values in self._struct.iter_unpack(payload)]


_BY_TYPE: Dict[type, RowCodec] = {}
_BY_ID: Dict[str, RowCodec] = {}


def register_row_codec(
    codec_id: str,
    row_type: type,
    fields: Sequence[Tuple[str, str]],
) -> RowCodec:
    """Register ``row_type`` for packed transport.

    Re-registering the same (id, type name, fields) triple is a no-op —
    modules re-import in spawned workers — but conflicting
    registrations raise :class:`ConfigurationError`.
    """
    codec = RowCodec(codec_id, row_type, fields)
    existing = _BY_ID.get(codec_id)
    if existing is not None and (
        existing.row_type.__name__ != row_type.__name__
        or existing.fields != codec.fields
    ):
        raise ConfigurationError(
            f"row codec {codec_id!r} already registered "
            f"for {existing.row_type.__name__} with a different layout"
        )
    _BY_ID[codec_id] = codec
    _BY_TYPE[row_type] = codec
    return codec


def codec_for_type(row_type: type) -> Optional[RowCodec]:
    """The registered codec for ``row_type``, or None."""
    return _BY_TYPE.get(row_type)


def pack_outcomes(outcomes: Sequence[tuple]):
    """Pack a batched job's outcome list, or None if it is not eligible.

    Eligible batches are non-empty, telemetry-free (every trace and
    metrics snapshot is None), and homogeneous in one registered row
    type.  The packed form is ``(PACKED_MARKER, codec_id, payload)``.
    """
    if not outcomes:
        return None
    codec: Optional[RowCodec] = None
    rows = []
    for value, trace_snapshot, metrics_snapshot in outcomes:
        if trace_snapshot is not None or metrics_snapshot is not None:
            return None
        row_codec = _BY_TYPE.get(type(value))
        if row_codec is None:
            return None
        if codec is None:
            codec = row_codec
        elif row_codec is not codec:
            return None
        rows.append(value)
    try:
        payload = codec.pack(rows)
    except struct.error:
        return None  # out-of-range field value: fall back to pickle
    return (PACKED_MARKER, codec.codec_id, payload)


def maybe_unpack(outcomes):
    """Decode a packed batch back to ``[(value, None, None), ...]``.

    Anything that is not a packed payload passes through unchanged, so
    the runner can call this unconditionally on every pool result.
    """
    if (
        isinstance(outcomes, tuple)
        and len(outcomes) == 3
        and outcomes[0] == PACKED_MARKER
    ):
        codec = _BY_ID.get(outcomes[1])
        if codec is None:
            raise ConfigurationError(
                f"received rows packed with unknown codec {outcomes[1]!r}; "
                "the module registering it must be imported first"
            )
        return [(row, None, None) for row in codec.unpack(outcomes[2])]
    return outcomes
