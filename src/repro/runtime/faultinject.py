"""Deterministic fault injection for the campaign runner.

Testing the resilience layer needs workers that fail *on schedule*: the
same point must crash, hang, or slow down on the same attempt in every
run, at any worker count.  A :class:`FaultPlan` scripts that — it maps a
point's campaign ordinal (its position in submission order, counting
every point of every ``map()`` call the runner serves) to an action
executed inside the worker just before the measurement:

* ``fail``  — raise :class:`~repro.errors.FaultInjected`; the runner
  retries the attempt under its policy.
* ``hang``  — sleep past the per-point timeout (``workers > 1``); an
  in-process attempt cannot be preempted, so it raises
  :class:`~repro.errors.PointTimeout` directly to model the same outcome.
* ``slow``  — sleep, then measure normally (exercises timeout margins).
* ``kill``  — die mid-campaign: ``os._exit`` in a pool worker (breaking
  the pool exactly like a segfault or an operator ``kill -9``), a
  :class:`~repro.errors.CampaignAborted` in-process.  This is how the
  resume tests chop a campaign in half.

The plan is part of the submitted job payload, so no shared state
crosses the process boundary and the schedule cannot race.

Spec grammar (the CLI's ``--inject-faults``)::

    SPEC    := ENTRY ("," ENTRY)*
    ENTRY   := ORDINAL ["x" COUNT] "=" ACTION ["@" SECONDS]
    ACTION  := "fail" | "hang" | "slow" | "kill"

``3x2=fail`` fails point 3's first two attempts (the third succeeds);
``5=hang@30`` hangs point 5 for 30 s on its first attempt; ``9=kill``
kills the campaign when point 9 runs.  Ordinals count from 0.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import (
    CampaignAborted,
    ConfigurationError,
    FaultInjected,
    PointTimeout,
)

__all__ = ["FaultAction", "FaultPlan", "apply_fault"]

_ACTIONS = ("fail", "hang", "slow", "kill")

#: Fallback sleep for ``hang`` with no explicit duration: long enough to
#: trip any sane ``--point-timeout``, short enough not to wedge a test
#: run that forgot one.
_DEFAULT_HANG_S = 30.0


@dataclass(frozen=True)
class FaultAction:
    """One scripted fault: what to do and for how long/often."""

    kind: str  # "fail" | "hang" | "slow" | "kill"
    seconds: float = 0.0  # sleep length for hang/slow
    attempts: int = 1  # how many leading attempts of the point it hits

    def __post_init__(self) -> None:
        if self.kind not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.kind!r}: expected one of {_ACTIONS}"
            )
        if self.seconds < 0.0:
            raise ConfigurationError(f"fault duration must be >= 0: {self.seconds}")
        if self.attempts < 1:
            raise ConfigurationError(f"fault attempt count must be >= 1: {self.attempts}")


class FaultPlan:
    """Scripted faults keyed by campaign point ordinal."""

    def __init__(self, actions: Optional[Dict[int, FaultAction]] = None) -> None:
        self.actions: Dict[int, FaultAction] = dict(actions or {})

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the ``--inject-faults`` grammar above."""
        actions: Dict[int, FaultAction] = {}
        for raw_entry in spec.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            head, sep, action_text = entry.partition("=")
            if not sep or not action_text:
                raise ConfigurationError(
                    f"bad fault entry {entry!r}: expected ORDINAL[xCOUNT]=ACTION[@SECONDS]"
                )
            ordinal_text, _, count_text = head.partition("x")
            kind, _, seconds_text = action_text.partition("@")
            try:
                ordinal = int(ordinal_text)
                attempts = int(count_text) if count_text else 1
                seconds = float(seconds_text) if seconds_text else 0.0
            except ValueError as exc:
                raise ConfigurationError(f"bad fault entry {entry!r}: {exc}") from exc
            if ordinal < 0:
                raise ConfigurationError(f"fault ordinal must be >= 0: {entry!r}")
            if kind == "hang" and not seconds_text:
                seconds = _DEFAULT_HANG_S
            actions[ordinal] = FaultAction(kind=kind, seconds=seconds, attempts=attempts)
        return cls(actions)

    def action_for(self, ordinal: int, attempt: int) -> Optional[FaultAction]:
        """The fault hitting this (point, attempt), or None."""
        action = self.actions.get(ordinal)
        if action is None or attempt > action.attempts:
            return None
        return action

    def __bool__(self) -> bool:
        return bool(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.actions!r})"


def apply_fault(action: FaultAction, in_process: bool) -> None:
    """Execute ``action`` at the start of a point attempt.

    Runs inside the worker (or inline when ``workers == 1``).  Returning
    normally means the measurement proceeds (the ``slow`` case).
    """
    if action.kind == "slow":
        time.sleep(action.seconds)
        return
    if action.kind == "fail":
        raise FaultInjected("injected fault: scripted attempt failure")
    if action.kind == "hang":
        if in_process:
            # No preemption in-process: model the hang's observable
            # outcome (a timed-out attempt) without wedging the run.
            raise PointTimeout("injected hang (in-process, simulated timeout)")
        time.sleep(action.seconds)
        # Only reached when no timeout (or a longer one) was configured;
        # fail loudly rather than letting the hang pass silently.
        raise FaultInjected(f"injected hang outlived the run ({action.seconds:.1f} s)")
    if action.kind == "kill":
        if in_process:
            raise CampaignAborted("injected kill: campaign process terminated")
        os._exit(3)
