"""On-disk memoization of campaign measurements.

A sweep point is a pure function of ``(scenario/coupling, attack
config, job parameters, seed)`` — the simulation has no other inputs —
so re-running ``deepnote figure2`` or a benchmark suite can skip every
point it has already measured.  :class:`ResultCache` stores one small
JSON document per point under a content-addressed filename derived from
:func:`repro.runtime.fingerprint.fingerprint`.

The cache is safe under concurrent writers (atomic rename) and treats
any unreadable or corrupt entry as a miss, never an error.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError

__all__ = ["ResultCacheStats", "ResultCache"]

_FORMAT_VERSION = 1


@dataclass
class ResultCacheStats:
    """Hit/miss/store accounting for one runner invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """A content-addressed JSON store for measured campaign points."""

    def __init__(self, cache_dir: Union[str, pathlib.Path]) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as exc:
            raise ConfigurationError(
                f"cache dir is not a directory: {self.cache_dir}"
            ) from exc
        self.stats = ResultCacheStats()

    def _path(self, key: str) -> pathlib.Path:
        # Two-level sharding keeps directories small on big campaigns.
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(document, dict) or document.get("version") != _FORMAT_VERSION:
            self.stats.misses += 1
            return None
        value = document.get("value")
        if not isinstance(value, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Persist ``value`` under ``key`` (atomic, last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"version": _FORMAT_VERSION, "key": key, "value": value}
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:8]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __len__(self) -> int:
        """Number of cached entries on disk."""
        # deepcheck: ignore[DC03,DC06] counting entries; order cannot change a count
        return sum(1 for _ in self.cache_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        # deepcheck: ignore[DC03] every entry is unlinked; deletion order is moot
        for path in self.cache_dir.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
