"""Stable fingerprints for memoization keys.

The on-disk result cache keys a measurement by *everything that can
change its value*: the scenario/coupling chain, the attack
configuration, the job parameters, and the seed.  ``fingerprint``
reduces an arbitrary tree of dataclasses, enums, containers, and
primitives to a canonical SHA-256 hex digest that is stable across
processes and runs (unlike ``hash``) and across dict insertion orders.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Iterable

__all__ = ["canonical", "fingerprint"]


def canonical(obj: Any) -> str:
    """A canonical, deterministic string encoding of ``obj``.

    Dataclasses encode as ``ClassName(field=value, ...)`` in field
    order, dicts sort by key, floats use ``repr`` (shortest round-trip
    form), enums use their qualified name.  Unknown objects fall back to
    ``repr`` — acceptable for fingerprinting, since a lying ``repr``
    only costs a spurious cache miss, never a wrong hit for a
    well-behaved type.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ", ".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, dict):
        items = ", ".join(
            f"{canonical(k)}: {canonical(v)}" for k, v in sorted(obj.items(), key=lambda kv: canonical(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(obj, (list, tuple, set, frozenset)):
        values: Iterable[Any] = obj
        if isinstance(obj, (set, frozenset)):
            values = sorted(obj, key=canonical)
        body = ", ".join(canonical(v) for v in values)
        kind = type(obj).__name__
        return f"{kind}[{body}]"
    # Plain value-like objects (e.g. ModalResponse): their default repr
    # embeds a memory address, so encode the instance state instead.
    state = getattr(obj, "__dict__", None)
    if state:
        return f"{type(obj).__name__}{canonical(state)}"
    return repr(obj)


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical encoding of ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()
