"""The parallel campaign runner.

The paper's headline artifacts are frequency/distance sweeps whose
points are completely independent: each one builds a fresh victim rig
seeded by :meth:`repro.rng.ReproRandom.fork` on a per-point label, so a
point's numbers depend only on its own spec, never on execution order.
:class:`SweepRunner` exploits that to fan points out over a
``ProcessPoolExecutor`` while guaranteeing bit-identical results to a
serial run:

* ``workers=1`` executes every point in-process, in order — the
  original sequential path;
* ``workers>1`` submits each point to the pool; because point functions
  are pure functions of their picklable spec, the gathered results are
  byte-for-byte the numbers the serial path produces, in the same
  order.

An optional :class:`~repro.runtime.cache.ResultCache` memoizes point
results on disk keyed by a caller-provided fingerprint, and a
:class:`~repro.runtime.progress.ProgressReporter` prints points/s and
ETA as the campaign advances.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO

from repro.errors import ConfigurationError, WorkerCrashed
from repro.obs import telemetry as obs
from repro.obs.telemetry import Telemetry

from .cache import ResultCache
from .progress import ProgressReporter, _STDERR

__all__ = ["SweepRunner", "make_runner"]


def _telemetry_point_job(fn: Callable[[Any], Any], spec: Any):
    """Run one point under a fresh telemetry bundle.

    Used for every pending point — in-process and in worker processes
    alike — whenever the parent has telemetry installed.  Isolating each
    point in its own bundle and merging the snapshots back in spec-index
    order makes the aggregated totals *identical* at any worker count:
    counters add the same per-point integers in the same order, and
    histogram sums add the same per-point floats in the same order.
    """
    bundle = Telemetry()
    previous = obs.install(bundle)
    try:
        result = fn(spec)
    finally:
        obs.install(previous)
    return result, bundle.tracer.snapshot(), bundle.metrics.snapshot()


def make_runner(
    workers: int = 1,
    cache_dir: Optional[str] = None,
    progress: bool = False,
) -> "Optional[SweepRunner]":
    """A :class:`SweepRunner` for the given CLI-style options.

    Returns None when every option is at its default, signalling
    callers to keep the plain sequential code path.
    """
    if workers == 1 and cache_dir is None and not progress:
        return None
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepRunner(workers=workers, cache=cache, progress=progress)


class SweepRunner:
    """Fans independent campaign points over worker processes.

    Args:
        workers: process count; 1 (the default) runs in-process and is
            guaranteed to take the exact sequential code path.
        cache: optional on-disk result cache; points whose key is
            already stored are not re-measured.
        progress: False silences reporting (counters still accumulate
            on the reporter returned by :meth:`last_reporter`).
        progress_stream: where progress lines go (default stderr).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: bool = False,
        progress_stream: object = _STDERR,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.progress_stream = progress_stream
        self._last_reporter: Optional[ProgressReporter] = None

    # -- introspection -----------------------------------------------------

    def last_reporter(self) -> Optional[ProgressReporter]:
        """The reporter of the most recent :meth:`map` (for stats/tests)."""
        return self._last_reporter

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
        encode: Optional[Callable[[Any], Dict[str, Any]]] = None,
        decode: Optional[Callable[[Dict[str, Any]], Any]] = None,
        label: str = "sweep",
    ) -> List[Any]:
        """``[fn(spec) for spec in specs]``, parallel and memoized.

        ``fn`` must be a module-level callable and every spec picklable
        (only required when ``workers > 1``).  When a cache is
        configured, ``keys`` must align with ``specs`` and
        ``encode``/``decode`` convert results to/from JSON-safe dicts;
        cached points skip measurement entirely.  Results come back in
        spec order regardless of completion order.
        """
        specs = list(specs)
        use_cache = self.cache is not None and keys is not None
        if use_cache:
            if len(keys) != len(specs):
                raise ConfigurationError(
                    f"{len(keys)} cache keys for {len(specs)} specs"
                )
            if encode is None or decode is None:
                raise ConfigurationError(
                    "a cache requires encode and decode functions"
                )

        # Telemetry is sampled per map() call: campaigns install a
        # bundle (obs.session) around the whole run, and the runner
        # forwards per-point telemetry from workers back into it.
        telemetry = obs.get()
        reporter = ProgressReporter(
            total=len(specs),
            label=label,
            stream=self.progress_stream if self.progress else None,
            telemetry=telemetry,
        )
        self._last_reporter = reporter
        reporter.start()

        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if use_cache:
                payload = self.cache.get(keys[index])
                if payload is not None:
                    results[index] = decode(payload)
                    reporter.advance(cached=True)
                    continue
            pending.append(index)

        if pending:
            if telemetry is not None:
                self._run_with_telemetry(fn, specs, pending, results, reporter, telemetry)
            elif self.workers == 1:
                for index in pending:
                    results[index] = fn(specs[index])
                    reporter.advance()
            else:
                self._run_pool(fn, specs, pending, results, reporter)
            if use_cache:
                for index in pending:
                    self.cache.put(keys[index], encode(results[index]))

        if self.progress:
            reporter.finish()
        return results

    def _run_with_telemetry(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        pending: Sequence[int],
        results: List[Any],
        reporter: ProgressReporter,
        telemetry: Telemetry,
    ) -> None:
        """Run pending points, each in a fresh bundle, and merge.

        Snapshots are folded back in spec-index order regardless of
        completion order, so the merged totals are float-identical
        between ``workers=1`` and any pool size.
        """
        snapshots: Dict[int, Any] = {}
        if self.workers == 1:
            for index in pending:
                results[index], trace_snap, metric_snap = _telemetry_point_job(
                    fn, specs[index]
                )
                snapshots[index] = (trace_snap, metric_snap)
                reporter.advance()
        else:
            max_workers = min(self.workers, len(pending))
            try:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=max_workers
                ) as pool:
                    futures = {
                        pool.submit(_telemetry_point_job, fn, specs[index]): index
                        for index in pending
                    }
                    for future in concurrent.futures.as_completed(futures):
                        index = futures[future]
                        results[index], trace_snap, metric_snap = future.result()
                        snapshots[index] = (trace_snap, metric_snap)
                        reporter.advance()
            except concurrent.futures.process.BrokenProcessPool as exc:
                raise WorkerCrashed(
                    f"a campaign worker died after {reporter.completed} of "
                    f"{reporter.total} points (pid {os.getpid()} lost its pool): {exc}"
                ) from exc
        for index in pending:
            trace_snap, metric_snap = snapshots[index]
            telemetry.tracer.ingest(trace_snap)
            telemetry.metrics.merge(metric_snap)

    def _run_pool(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        pending: Sequence[int],
        results: List[Any],
        reporter: ProgressReporter,
    ) -> None:
        max_workers = min(self.workers, len(pending))
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = {
                    pool.submit(fn, specs[index]): index for index in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    reporter.advance()
        except concurrent.futures.process.BrokenProcessPool as exc:
            raise WorkerCrashed(
                f"a campaign worker died after {reporter.completed} of "
                f"{reporter.total} points (pid {os.getpid()} lost its pool): {exc}"
            ) from exc
