"""The parallel campaign runner.

The paper's headline artifacts are frequency/distance sweeps whose
points are completely independent: each one builds a fresh victim rig
seeded by :meth:`repro.rng.ReproRandom.fork` on a per-point label, so a
point's numbers depend only on its own spec, never on execution order.
:class:`SweepRunner` exploits that to fan points out over a
``ProcessPoolExecutor`` while guaranteeing bit-identical results to a
serial run:

* ``workers=1`` executes every point in-process, in order — the
  original sequential path;
* ``workers>1`` submits each point to the pool; because point functions
  are pure functions of their picklable spec, the gathered results are
  byte-for-byte the numbers the serial path produces, in the same
  order.

On top of that sits the resilience layer (all optional, all off by
default):

* a :class:`~repro.runtime.journal.CampaignJournal` checkpoints every
  completed point to disk (fsync'd) so a killed campaign resumes where
  it stopped;
* a :class:`~repro.runtime.retry.RetryPolicy` gives failing or
  timed-out attempts bounded retries with deterministic exponential
  backoff, then degrades the point to a recorded
  :class:`~repro.runtime.retry.PointFailure` row instead of aborting;
* a :class:`~repro.runtime.faultinject.FaultPlan` scripts worker
  failures (fail/hang/slow/kill) so all of the above is testable on
  schedule.

An optional :class:`~repro.runtime.cache.ResultCache` memoizes point
results on disk keyed by a caller-provided fingerprint, and a
:class:`~repro.runtime.progress.ProgressReporter` prints points/s and
ETA as the campaign advances.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.errors import (
    CampaignAborted,
    ConfigurationError,
    FaultInjected,
    PointTimeout,
    WorkerCrashed,
)
from repro.obs import telemetry as obs
from repro.obs.telemetry import Telemetry

from .cache import ResultCache
from .faultinject import FaultAction, FaultPlan, apply_fault
from .journal import CampaignJournal
from .progress import ProgressReporter, _STDERR
from .retry import FAILURE_ERROR, FAILURE_FAULT, FAILURE_TIMEOUT, PointFailure, RetryPolicy
from .transport import maybe_unpack, pack_outcomes

__all__ = ["SweepRunner", "make_runner"]

#: Smallest tick of the pool wait loop (seconds): bounds how late a
#: timeout or backoff expiry can be noticed without busy-waiting.
_MIN_WAIT_TICK_S = 0.01


def _telemetry_point_job(fn: Callable[[Any], Any], spec: Any):
    """Run one point under a fresh telemetry bundle.

    Used for every pending point — in-process and in worker processes
    alike — whenever the parent has telemetry installed.  Isolating each
    point in its own bundle and merging the snapshots back in spec-index
    order makes the aggregated totals *identical* at any worker count:
    counters add the same per-point integers in the same order, and
    histogram sums add the same per-point floats in the same order.
    """
    bundle = Telemetry()
    previous = obs.install(bundle)
    try:
        result = fn(spec)
    finally:
        obs.install(previous)
    metric_snap = bundle.metrics.snapshot()
    if len(bundle.series):
        # Series windows ride inside the metrics snapshot so the
        # (result, trace, metrics) transport triple keeps its shape;
        # the merge loop pops the key back out before metrics.merge.
        metric_snap["series"] = bundle.series.snapshot()
    return result, bundle.tracer.snapshot(), metric_snap


def _attempt_job(
    fn: Callable[[Any], Any],
    spec: Any,
    fault: Optional[FaultAction],
    with_telemetry: bool,
):
    """One point attempt as the pool executes it.

    The scripted fault (if any) fires first — it belongs to this
    (point, attempt) pair and rides along in the job payload, so the
    schedule is deterministic with no cross-process coordination.
    Returns ``(result, trace_snapshot | None, metrics_snapshot | None)``.
    """
    if fault is not None:
        apply_fault(fault, in_process=False)
    if with_telemetry:
        return _telemetry_point_job(fn, spec)
    return fn(spec), None, None


#: Target submissions per worker for the batched pool engine: enough
#: chunks that a slow worker cannot stall the tail, few enough that
#: pickling/IPC overhead stays amortized across many points.
_BATCH_CHUNKS_PER_WORKER = 4


def _batched_attempt_job(
    fn: Callable[[Any], Any],
    specs: Sequence[Any],
    with_telemetry: bool,
):
    """A contiguous chunk of point attempts as one pool task.

    With the vectorized kernels a sweep point costs tens of
    microseconds, so per-point ``pool.submit`` pickling dominates the
    wall clock on small grids.  Batching amortizes that overhead; each
    point still runs through :func:`_attempt_job` (fault-free — the
    batched engine only runs when no fault plan is installed), so
    per-point results and telemetry snapshots are unchanged.

    Telemetry-free chunks of registered hot row types additionally
    return as one packed struct payload instead of a pickled object
    list (see :mod:`repro.runtime.transport`); the parent unpacks to
    the identical per-point triples.
    """
    outcomes = [_attempt_job(fn, spec, None, with_telemetry) for spec in specs]
    packed = pack_outcomes(outcomes)
    return outcomes if packed is None else packed


def make_runner(
    workers: int = 1,
    cache_dir: Optional[str] = None,
    progress: bool = False,
    *,
    journal_path: Optional[str] = None,
    resume: bool = False,
    campaign: Optional[str] = None,
    point_timeout_s: Optional[float] = None,
    max_retries: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    retry_seed: int = 0,
) -> "Optional[SweepRunner]":
    """A :class:`SweepRunner` for the given CLI-style options.

    Returns None when every option is at its default, signalling
    callers to keep the plain sequential code path.

    Any resilience option (``journal_path``/``resume``/
    ``point_timeout_s``/``max_retries``/``fault_plan``) also installs a
    :class:`RetryPolicy` (with defaults for whatever was not given), so
    a journaled campaign degrades gracefully instead of aborting on the
    first flaky point.  ``resume`` requires ``journal_path``; a journal
    requires ``campaign`` (the fingerprint written into its header).
    """
    resilient = (
        journal_path is not None
        or resume
        or point_timeout_s is not None
        or max_retries is not None
        or retry is not None
        or fault_plan is not None
    )
    if workers == 1 and cache_dir is None and not progress and not resilient:
        return None
    if resume and journal_path is None:
        raise ConfigurationError("--resume needs a journal (--journal or --cache-dir)")
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    if cache_dir is not None:
        # Campaigns with a cache dir also persist the acoustic-field
        # memo there, so re-runs and ablation variants sharing geometry
        # skip the propagation chain across processes.
        from repro.core.fieldcache import attach_disk

        attach_disk(os.path.join(cache_dir, "acoustic-field"))
    journal = None
    if journal_path is not None:
        if campaign is None:
            raise ConfigurationError("a journal needs a campaign fingerprint")
        journal = CampaignJournal(journal_path, campaign=campaign, resume=resume)
    if retry is None and resilient:
        retry = RetryPolicy(
            max_retries=2 if max_retries is None else max_retries,
            point_timeout_s=point_timeout_s,
            seed=retry_seed,
        )
    return SweepRunner(
        workers=workers,
        cache=cache,
        progress=progress,
        journal=journal,
        retry=retry,
        fault_plan=fault_plan,
    )


class _PointState:
    """Mutable per-point bookkeeping while a map() is executing."""

    __slots__ = ("index", "ordinal", "attempt", "ready_at")

    def __init__(self, index: int, ordinal: int) -> None:
        self.index = index
        self.ordinal = ordinal
        self.attempt = 1
        self.ready_at = float("-inf")


class _MapContext:
    """Everything one :meth:`SweepRunner.map` call threads around."""

    def __init__(
        self,
        runner: "SweepRunner",
        results: List[Any],
        reporter: ProgressReporter,
        telemetry: Optional[Telemetry],
        keys: Optional[Sequence[str]],
        encode: Optional[Callable[[Any], Dict[str, Any]]],
        label: str,
        ordinals: Dict[int, int],
    ) -> None:
        self.runner = runner
        self.results = results
        self.reporter = reporter
        self.telemetry = telemetry
        self.keys = keys
        self.encode = encode
        self.label = label
        self.ordinals = ordinals
        self.snapshots: Dict[int, Tuple[Any, Any]] = {}

    @property
    def with_telemetry(self) -> bool:
        return self.telemetry is not None

    def key_for(self, index: int) -> Optional[str]:
        return self.keys[index] if self.keys is not None else None

    def point_label(self, index: int) -> str:
        return f"{self.label}[{index}]"

    def complete_ok(self, index: int, value: Any, trace_snap: Any, metric_snap: Any) -> None:
        self.results[index] = value
        if trace_snap is not None:
            self.snapshots[index] = (trace_snap, metric_snap)
        runner = self.runner
        payload = None
        key = self.key_for(index)
        if key is not None and self.encode is not None:
            payload = self.encode(value)
        if runner.cache is not None and key is not None and payload is not None:
            runner.cache.put(key, payload)
        if runner.journal is not None:
            runner.journal.record_ok(key, self.point_label(index), payload)
        self.reporter.advance()

    def complete_failure(self, state: _PointState, failure: PointFailure) -> None:
        self.results[state.index] = failure
        runner = self.runner
        if runner.journal is not None:
            runner.journal.record_failure(failure.key, failure)
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "campaign_point_failures_total", label=self.label, kind=failure.kind
            ).inc()
            self.telemetry.tracer.instant(
                "campaign.point.failure",
                0.0,
                category="campaign",
                args={"text": failure.describe()},
            )
        self.reporter.advance(failed=True)

    def count_retry(self, kind: str) -> None:
        self.reporter.note_retry()
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "campaign_retries_total", label=self.label, kind=kind
            ).inc()

    def count_timeout(self) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "campaign_point_timeouts_total", label=self.label
            ).inc()


def _failure_kind(exc: BaseException) -> str:
    if isinstance(exc, PointTimeout):
        return FAILURE_TIMEOUT
    if isinstance(exc, FaultInjected):
        return FAILURE_FAULT
    return FAILURE_ERROR


class SweepRunner:
    """Fans independent campaign points over worker processes.

    Args:
        workers: process count; 1 (the default) runs in-process and is
            guaranteed to take the exact sequential code path.
        cache: optional on-disk result cache; points whose key is
            already stored are not re-measured.
        progress: False silences reporting (counters still accumulate
            on the reporter returned by :meth:`last_reporter`).
        progress_stream: where progress lines go (default stderr).
        journal: optional checkpoint journal; completed points are
            appended (fsync'd) and, on a resumed journal, served back
            without re-measuring.  Requires ``keys``+codec on map().
        retry: optional :class:`RetryPolicy`; without one, the first
            point exception propagates (the pre-resilience behavior).
        fault_plan: optional scripted faults, keyed by campaign point
            ordinal (testing aid; see :mod:`repro.runtime.faultinject`).
        sleep_fn/time_fn: injectable clocks for deterministic tests.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        progress: bool = False,
        progress_stream: object = _STDERR,
        journal: Optional[CampaignJournal] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        sleep_fn: Callable[[float], None] = time.sleep,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.progress_stream = progress_stream
        self.journal = journal
        self.retry = retry
        self.fault_plan = fault_plan
        self._sleep_fn = sleep_fn
        self._time_fn = time_fn
        self._last_reporter: Optional[ProgressReporter] = None
        self._next_ordinal = 0

    # -- introspection -----------------------------------------------------

    def last_reporter(self) -> Optional[ProgressReporter]:
        """The reporter of the most recent :meth:`map` (for stats/tests)."""
        return self._last_reporter

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the journal file handle, if any (idempotent)."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        keys: Optional[Sequence[str]] = None,
        encode: Optional[Callable[[Any], Dict[str, Any]]] = None,
        decode: Optional[Callable[[Dict[str, Any]], Any]] = None,
        label: str = "sweep",
    ) -> List[Any]:
        """``[fn(spec) for spec in specs]``, parallel, memoized, durable.

        ``fn`` must be a module-level callable and every spec picklable
        (only required when ``workers > 1``).  When a cache or journal
        is configured, ``keys`` must align with ``specs`` and
        ``encode``/``decode`` convert results to/from JSON-safe dicts;
        cached, journaled, and resumed points skip measurement entirely.
        Results come back in spec order regardless of completion order.
        With a :class:`RetryPolicy`, a point that exhausts its attempts
        occupies its slot as a :class:`PointFailure` instead of raising.
        """
        specs = list(specs)
        use_cache = self.cache is not None and keys is not None
        if use_cache:
            if len(keys) != len(specs):
                raise ConfigurationError(
                    f"{len(keys)} cache keys for {len(specs)} specs"
                )
            if encode is None or decode is None:
                raise ConfigurationError(
                    "a cache requires encode and decode functions"
                )
        if self.journal is not None:
            if keys is None or encode is None or decode is None:
                raise ConfigurationError(
                    "a journal requires keys, encode, and decode functions"
                )
            if len(keys) != len(specs):
                raise ConfigurationError(
                    f"{len(keys)} journal keys for {len(specs)} specs"
                )

        # Telemetry is sampled per map() call: campaigns install a
        # bundle (obs.session) around the whole run, and the runner
        # forwards per-point telemetry from workers back into it.
        telemetry = obs.get()
        reporter = ProgressReporter(
            total=len(specs),
            label=label,
            stream=self.progress_stream if self.progress else None,
            telemetry=telemetry,
        )
        self._last_reporter = reporter
        reporter.start()

        results: List[Any] = [None] * len(specs)
        ordinals: Dict[int, int] = {}
        context = _MapContext(
            self, results, reporter, telemetry, keys, encode, label, ordinals
        )
        pending: List[int] = []
        for index, spec in enumerate(specs):
            ordinals[index] = self._next_ordinal
            self._next_ordinal += 1
            if self.journal is not None:
                record = self.journal.lookup(keys[index])
                if record is not None:
                    if record["status"] == "ok":
                        results[index] = decode(record["value"])
                        reporter.advance(resumed=True)
                    else:
                        results[index] = PointFailure.from_payload(record["failure"])
                        reporter.advance(resumed=True, failed=True)
                    continue
            if use_cache:
                payload = self.cache.get(keys[index])
                if payload is not None:
                    results[index] = decode(payload)
                    if self.journal is not None:
                        self.journal.record_ok(
                            keys[index], context.point_label(index), payload
                        )
                    reporter.advance(cached=True)
                    continue
            pending.append(index)

        if pending:
            if self.workers == 1:
                self._execute_inline(fn, specs, pending, context)
            else:
                self._execute_pool(fn, specs, pending, context)
            if telemetry is not None:
                for index in pending:
                    snaps = context.snapshots.get(index)
                    if snaps is None:
                        continue  # failed points contribute no telemetry
                    trace_snap, metric_snap = snaps
                    telemetry.tracer.ingest(trace_snap)
                    series_snap = metric_snap.pop("series", None)
                    telemetry.metrics.merge(metric_snap)
                    if series_snap is not None:
                        telemetry.series.merge(series_snap)

        if self.progress:
            reporter.finish()
        return results

    # -- attempt bookkeeping -----------------------------------------------

    def _fault_for(self, state: _PointState) -> Optional[FaultAction]:
        if self.fault_plan is None:
            return None
        return self.fault_plan.action_for(state.ordinal, state.attempt)

    def _after_attempt_failure(
        self, state: _PointState, exc: Exception, context: _MapContext
    ) -> Optional[float]:
        """Handle one failed attempt.

        Returns the backoff delay when the point should retry; records a
        :class:`PointFailure` and returns None when the budget is spent.
        Re-raises when no retry policy is installed (legacy behavior).
        """
        kind = _failure_kind(exc)
        if kind == FAILURE_TIMEOUT:
            context.count_timeout()
        if self.retry is None:
            raise exc
        label = context.point_label(state.index)
        if state.attempt < self.retry.max_attempts:
            context.count_retry(kind)
            return self.retry.backoff_s(label, state.attempt)
        failure = PointFailure(
            label=label,
            key=context.key_for(state.index),
            kind=kind,
            message=str(exc) or type(exc).__name__,
            attempts=state.attempt,
        )
        context.complete_failure(state, failure)
        return None

    # -- sequential engine ---------------------------------------------------

    def _execute_inline(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        pending: Sequence[int],
        context: _MapContext,
    ) -> None:
        for index in pending:
            state = _PointState(index, context.ordinals[index])
            while True:
                fault = self._fault_for(state)
                try:
                    if fault is not None:
                        apply_fault(fault, in_process=True)
                    if context.with_telemetry:
                        value, trace_snap, metric_snap = _telemetry_point_job(
                            fn, specs[index]
                        )
                    else:
                        value, trace_snap, metric_snap = fn(specs[index]), None, None
                except CampaignAborted:
                    raise  # the journal holds everything completed so far
                except Exception as exc:
                    delay = self._after_attempt_failure(state, exc, context)
                    if delay is None:
                        break
                    self._sleep_fn(delay)
                    state.attempt += 1
                    continue
                context.complete_ok(index, value, trace_snap, metric_snap)
                break

    # -- pool engine ---------------------------------------------------------

    def _new_pool(self, pending_count: int) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, pending_count)
        )

    def _reap_pool(self, pool: concurrent.futures.ProcessPoolExecutor) -> None:
        """Terminate a pool whose workers may be hung.

        ``shutdown`` alone would block behind a hung worker, so the
        worker processes are terminated first (private attribute,
        guarded — worst case the hung worker lingers until exit).
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover - best effort
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _execute_pool(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        pending: Sequence[int],
        context: _MapContext,
    ) -> None:
        if (
            self.retry is None
            and self.fault_plan is None
            and perf.vec_physics_enabled()
        ):
            # Legacy semantics (first exception propagates, no retries,
            # no deadlines) — safe to trade the per-point state machine
            # for chunked submissions that amortize pool overhead.
            self._execute_pool_batched(fn, specs, pending, context)
            return
        timeout_s = self.retry.point_timeout_s if self.retry is not None else None
        waiting: List[_PointState] = [
            _PointState(index, context.ordinals[index]) for index in pending
        ]
        inflight: Dict[concurrent.futures.Future, Tuple[_PointState, Optional[float]]] = {}
        pool = self._new_pool(len(pending))
        try:
            while waiting or inflight:
                now = self._time_fn()
                still_waiting: List[_PointState] = []
                for state in waiting:
                    if state.ready_at > now:
                        still_waiting.append(state)
                        continue
                    try:
                        future = pool.submit(
                            _attempt_job,
                            fn,
                            specs[state.index],
                            self._fault_for(state),
                            context.with_telemetry,
                        )
                    except concurrent.futures.process.BrokenProcessPool as exc:
                        raise WorkerCrashed(
                            f"a campaign worker died after "
                            f"{context.reporter.completed} of "
                            f"{context.reporter.total} points "
                            f"(pid {os.getpid()} lost its pool): {exc}"
                        ) from exc
                    deadline = None if timeout_s is None else now + timeout_s
                    inflight[future] = (state, deadline)
                waiting = still_waiting

                if not inflight:
                    next_ready = min(state.ready_at for state in waiting)
                    self._sleep_fn(max(0.0, next_ready - self._time_fn()))
                    continue

                done, _ = concurrent.futures.wait(
                    list(inflight),
                    timeout=self._wait_budget(waiting, inflight, now),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    state, _deadline = inflight.pop(future)
                    try:
                        value, trace_snap, metric_snap = future.result()
                    except concurrent.futures.process.BrokenProcessPool as exc:
                        raise WorkerCrashed(
                            f"a campaign worker died after "
                            f"{context.reporter.completed} of "
                            f"{context.reporter.total} points "
                            f"(pid {os.getpid()} lost its pool): {exc}"
                        ) from exc
                    except Exception as exc:
                        delay = self._after_attempt_failure(state, exc, context)
                        if delay is not None:
                            state.attempt += 1
                            state.ready_at = self._time_fn() + delay
                            waiting.append(state)
                    else:
                        context.complete_ok(state.index, value, trace_snap, metric_snap)

                if timeout_s is not None and inflight:
                    pool, waiting = self._expire_timeouts(
                        pool, inflight, waiting, context, len(pending)
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _execute_pool_batched(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        pending: Sequence[int],
        context: _MapContext,
    ) -> None:
        """Pool execution with chunked job payloads (no retry layer).

        Splits the pending indices into contiguous chunks and submits
        each chunk as one :func:`_batched_attempt_job`.  Results are
        completed per point in chunk order, so caching, journaling, and
        telemetry snapshots behave exactly as with per-point submission;
        a point exception propagates (legacy behavior), and a dead
        worker surfaces as :class:`WorkerCrashed`.
        """
        chunk = max(
            1, -(-len(pending) // (self.workers * _BATCH_CHUNKS_PER_WORKER))
        )
        batches = [
            list(pending[offset : offset + chunk])
            for offset in range(0, len(pending), chunk)
        ]
        pool = self._new_pool(len(batches))
        try:
            futures: Dict[concurrent.futures.Future, List[int]] = {}
            for batch in batches:
                try:
                    future = pool.submit(
                        _batched_attempt_job,
                        fn,
                        [specs[index] for index in batch],
                        context.with_telemetry,
                    )
                except concurrent.futures.process.BrokenProcessPool as exc:
                    raise WorkerCrashed(
                        f"a campaign worker died after "
                        f"{context.reporter.completed} of "
                        f"{context.reporter.total} points "
                        f"(pid {os.getpid()} lost its pool): {exc}"
                    ) from exc
                futures[future] = batch
            for future in concurrent.futures.as_completed(list(futures)):
                batch = futures[future]
                try:
                    outcomes = maybe_unpack(future.result())
                except concurrent.futures.process.BrokenProcessPool as exc:
                    raise WorkerCrashed(
                        f"a campaign worker died after "
                        f"{context.reporter.completed} of "
                        f"{context.reporter.total} points "
                        f"(pid {os.getpid()} lost its pool): {exc}"
                    ) from exc
                for index, (value, trace_snap, metric_snap) in zip(batch, outcomes):
                    context.complete_ok(index, value, trace_snap, metric_snap)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _wait_budget(
        self,
        waiting: Sequence[_PointState],
        inflight: Dict[concurrent.futures.Future, Tuple[_PointState, Optional[float]]],
        now: float,
    ) -> Optional[float]:
        """How long the wait loop may block before it must look around."""
        horizons = [deadline for _state, deadline in inflight.values() if deadline is not None]
        horizons.extend(state.ready_at for state in waiting)
        if not horizons:
            return None
        return max(_MIN_WAIT_TICK_S, min(horizons) - now)

    def _expire_timeouts(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        inflight: Dict[concurrent.futures.Future, Tuple[_PointState, Optional[float]]],
        waiting: List[_PointState],
        context: _MapContext,
        pending_count: int,
    ) -> Tuple[concurrent.futures.ProcessPoolExecutor, List[_PointState]]:
        """Fail attempts past their deadline; rebuild the pool if any.

        A hung worker cannot be cancelled, so the whole pool is
        terminated and recreated.  In-flight attempts that had *not*
        timed out are resubmitted without consuming an attempt — their
        results are pure functions of the spec, so re-running them is
        free of side effects.
        """
        now = self._time_fn()
        expired = [
            future
            for future, (_state, deadline) in inflight.items()
            if deadline is not None and now >= deadline and not future.done()
        ]
        if not expired:
            return pool, waiting
        expired_states = {inflight[future][0] for future in expired}
        self._reap_pool(pool)
        for future, (state, _deadline) in list(inflight.items()):
            if state in expired_states:
                timeout = PointTimeout(
                    f"{context.point_label(state.index)} exceeded "
                    f"{self.retry.point_timeout_s:.1f} s (attempt {state.attempt})"
                )
                delay = self._after_attempt_failure(state, timeout, context)
                if delay is not None:
                    state.attempt += 1
                    state.ready_at = now + delay
                    waiting.append(state)
            else:
                state.ready_at = float("-inf")
                waiting.append(state)
        inflight.clear()
        return self._new_pool(pending_count), waiting
