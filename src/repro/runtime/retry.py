"""Retry policy and failure records for campaign points.

A long sweep should not lose hours of work to one flaky point.  When a
:class:`RetryPolicy` is installed on the runner, a point attempt that
raises (or exceeds the per-point timeout) is retried with exponential
backoff; the jitter factor is drawn from :class:`repro.rng.ReproRandom`
forked on the policy seed and the point label, so two runs of the same
campaign produce the *same* retry schedule — resilience does not cost
reproducibility.

A point that exhausts its budget degrades to a :class:`PointFailure`
row: the campaign completes, the failure is journaled, counted in the
metrics registry, and surfaced in the rendered report instead of
aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.rng import ReproRandom

__all__ = ["RetryPolicy", "PointFailure"]

#: Failure kinds recorded on a :class:`PointFailure`.
FAILURE_ERROR = "error"
FAILURE_TIMEOUT = "timeout"
FAILURE_FAULT = "fault"


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a failing campaign point.

    Args:
        max_retries: extra attempts after the first (0 = try once).
        point_timeout_s: wall-clock budget per attempt, enforced with
            ``workers > 1`` (an in-process attempt cannot be preempted);
            None disables the timeout.
        backoff_base_s: delay before the first retry.
        backoff_factor: multiplier applied per further retry.
        jitter_fraction: each delay is scaled by a deterministic factor
            uniform in ``[1 - jitter, 1 + jitter]``.
        seed: root seed for the jitter stream (campaigns pass their own
            seed so retry schedules are reproducible run-to-run).
    """

    max_retries: int = 2
    point_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {self.max_retries}")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0.0:
            raise ConfigurationError(
                f"point timeout must be positive: {self.point_timeout_s}"
            )
        if self.backoff_base_s < 0.0 or self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff must have base >= 0 and factor >= 1: "
                f"{self.backoff_base_s}/{self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter fraction must be in [0, 1]: {self.jitter_fraction}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a point gets before it becomes a failure row."""
        return self.max_retries + 1

    def backoff_s(self, label: str, attempt: int) -> float:
        """Delay before re-running ``label`` after failed attempt ``attempt``.

        Deterministic: the jitter comes from a fork keyed on the policy
        seed, the point label, and the attempt number, never from wall
        time, so the schedule is identical at any worker count and on
        every rerun.
        """
        rng = ReproRandom(self.seed).fork(f"backoff/{label}/{attempt}")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        jitter = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return base * jitter


@dataclass(frozen=True)
class PointFailure:
    """A campaign point that exhausted its retry budget.

    Takes the point's slot in the runner's result list so campaigns can
    keep every successful measurement; renderers show these rows as
    degraded instead of dropping the whole run.
    """

    label: str
    key: Optional[str]
    kind: str  # "error" | "timeout" | "fault"
    message: str
    attempts: int

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (for the checkpoint journal)."""
        return {
            "label": self.label,
            "key": self.key,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PointFailure":
        """Inverse of :meth:`to_payload`."""
        return cls(
            label=payload["label"],
            key=payload.get("key"),
            kind=payload["kind"],
            message=payload["message"],
            attempts=payload["attempts"],
        )

    def describe(self) -> str:
        """One-line human rendering for reports."""
        return (
            f"{self.label}: {self.kind} after {self.attempts} "
            f"attempt{'s' if self.attempts != 1 else ''} — {self.message}"
        )
