"""Deterministic simulation substrate: virtual clock and event engine.

The event-loop model — ordering, tie-breaking, the determinism
contract, actor lifecycle — is documented in ``docs/SIMULATION.md``.
"""

from .clock import VirtualClock
from .events import (
    LANE_ATTACK,
    LANE_DEFAULT,
    LANE_MONITOR,
    LANE_REPAIR,
    LANE_SERVICE,
    Event,
    EventQueue,
    EventScheduler,
    Simulator,
)

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Simulator",
    "EventScheduler",
    "LANE_ATTACK",
    "LANE_SERVICE",
    "LANE_DEFAULT",
    "LANE_REPAIR",
    "LANE_MONITOR",
]
