"""Deterministic simulation substrate: virtual clock and event queue."""

from .clock import VirtualClock
from .events import Event, EventQueue, Simulator

__all__ = ["VirtualClock", "Event", "EventQueue", "Simulator"]
