"""Virtual time base shared by the drive, workloads, and attack sessions.

The reproduction does not sleep on the wall clock: all durations (seek
times, rotational latency, retry penalties, command timeouts, crash
times) are accounted on a :class:`VirtualClock`.  This makes multi-minute
experiments (Table 3 needs ~80 simulated seconds) run in milliseconds and
keeps every result deterministic.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ConfigurationError(f"clock cannot start negative: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time.

        Negative deltas are rejected: simulated time is monotonic.
        """
        if delta < 0.0:
            raise ConfigurationError(f"cannot advance clock by {delta}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump forward to absolute time ``when`` (no-op if in the past)."""
        if when > self._now:
            self._now = when
        return self._now

    def elapsed_since(self, start: float) -> float:
        """Seconds elapsed between ``start`` and now."""
        return self._now - start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}s)"
