"""A small discrete-event simulator.

Most of the reproduction advances time synchronously through
:class:`repro.sim.clock.VirtualClock`, but periodic activity — journal
commit timers, background compaction, attack schedule changes, watchdog
monitors — is expressed as events on an :class:`EventQueue` driven by a
:class:`Simulator`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError

from .clock import VirtualClock

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, sequence number)."""

    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so the simulator skips it when it fires."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed by firing time."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, when: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute time ``when``."""
        event = Event(when=when, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`VirtualClock`."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()
        self.fired = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise ConfigurationError(f"cannot schedule in the past: {delay}")
        return self.queue.push(self.clock.now + delay, action, label=label)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``action`` periodically; returns the first event.

        Cancelling the returned event only cancels the next firing; use
        ``until`` to bound a periodic chain, or raise StopIteration from
        ``action`` to end it.
        """
        if interval <= 0.0:
            raise ConfigurationError(f"interval must be positive: {interval}")

        def fire_and_reschedule() -> None:
            try:
                action()
            except StopIteration:
                return
            next_time = self.clock.now + interval
            if until is None or next_time <= until:
                self.queue.push(next_time, fire_and_reschedule, label=label)

        return self.schedule(interval, fire_and_reschedule, label=label)

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        event.action()
        self.fired += 1
        return True

    def run_until(self, deadline: float) -> None:
        """Fire every event scheduled at or before ``deadline``.

        The clock always lands exactly on ``deadline`` so that callers can
        interleave synchronous work with event processing.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self.clock.advance_to(deadline)

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely; returns the number of events fired."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        return fired
