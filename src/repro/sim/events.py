"""A deterministic discrete-event engine on the virtual clock.

Most of the reproduction advances time synchronously through
:class:`repro.sim.clock.VirtualClock`, but periodic activity — journal
commit timers, background compaction, attack schedule changes, watchdog
monitors — is expressed as events on an :class:`EventQueue` driven by a
:class:`Simulator`.  :class:`EventScheduler` extends the simulator into
the fleet-scale engine documented in ``docs/SIMULATION.md``: stable
``(time, lane, seq)`` ordering, label-forked per-actor RNG streams, and
``repro.obs`` counters/series describing the event loop itself.

Determinism contract (see docs/SIMULATION.md):

* time is virtual seconds only — no wall clock anywhere (deepcheck
  DC01); the clock advances exactly to each event's timestamp;
* simultaneous events fire in ``(lane, seq)`` order, so cross-actor
  phases (attack edges before service ticks before monitors) resolve
  identically on every run and at every sharding width;
* randomness comes from :meth:`EventScheduler.rng_for`, which forks a
  child stream from a string label — a stream's values depend on the
  scheduler seed and the label, never on fork order or event order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs import telemetry as obs
from repro.rng import ReproRandom, make_rng

from .clock import VirtualClock

__all__ = [
    "LANE_ATTACK",
    "LANE_SERVICE",
    "LANE_DEFAULT",
    "LANE_REPAIR",
    "LANE_MONITOR",
    "Event",
    "EventQueue",
    "Simulator",
    "EventScheduler",
]

# Tie-breaking lanes for simultaneous events, fired in ascending order.
# Physics edges must land before the service work that samples them, and
# monitors must observe the post-service state; repairs sit in between so
# a rebuild completing exactly at a monitor tick is visible to it.
LANE_ATTACK = 0
LANE_SERVICE = 10
LANE_DEFAULT = LANE_SERVICE
LANE_REPAIR = 20
LANE_MONITOR = 30


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is ``(when, lane, seq)``.

    ``seq`` is a queue-global monotone counter, so events at the same
    virtual time and lane fire in scheduling order — the final, total
    tie-break that makes the engine deterministic.
    """

    when: float
    lane: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so the simulator skips it when it fires."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects keyed ``(when, lane, seq)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(
        self,
        when: float,
        action: Callable[[], None],
        label: str = "",
        lane: int = LANE_DEFAULT,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``when`` seconds."""
        event = Event(
            when=when, lane=lane, seq=next(self._counter), action=action, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None


class Simulator:
    """Drives an :class:`EventQueue` against a :class:`VirtualClock`.

    Deterministic by construction: virtual seconds only, and the queue's
    ``(when, lane, seq)`` ordering resolves simultaneous events the same
    way on every run.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.queue = EventQueue()
        self.fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in virtual seconds."""
        return self.clock.now

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        label: str = "",
        lane: int = LANE_DEFAULT,
    ) -> Event:
        """Schedule ``action`` to run ``delay`` virtual seconds from now."""
        if delay < 0.0:
            raise ConfigurationError(f"cannot schedule in the past: {delay}")
        return self.queue.push(self.clock.now + delay, action, label=label, lane=lane)

    def schedule_at(
        self,
        when: float,
        action: Callable[[], None],
        label: str = "",
        lane: int = LANE_DEFAULT,
    ) -> Event:
        """Schedule ``action`` at absolute virtual time ``when`` seconds."""
        if when < self.clock.now:
            raise ConfigurationError(
                f"cannot schedule in the past: {when} < {self.clock.now}"
            )
        return self.queue.push(when, action, label=label, lane=lane)

    def schedule_every(
        self,
        interval: float,
        action: Callable[[], None],
        label: str = "",
        until: Optional[float] = None,
        lane: int = LANE_DEFAULT,
    ) -> Event:
        """Schedule ``action`` every ``interval`` seconds; returns the first event.

        Cancelling the returned event only cancels the next firing; use
        ``until`` (inclusive) to bound a periodic chain, or raise
        StopIteration from ``action`` to end it.
        """
        if interval <= 0.0:
            raise ConfigurationError(f"interval must be positive: {interval}")

        def fire_and_reschedule() -> None:
            try:
                action()
            except StopIteration:
                return
            next_time = self.clock.now + interval
            if until is None or next_time <= until:
                self.queue.push(next_time, fire_and_reschedule, label=label, lane=lane)

        return self.schedule(interval, fire_and_reschedule, label=label, lane=lane)

    def step(self) -> bool:
        """Fire the earliest event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        event.action()
        self.fired += 1
        return True

    def run_until(self, deadline: float) -> None:
        """Fire every event scheduled at or before ``deadline``.

        The clock always lands exactly on ``deadline`` so that callers can
        interleave synchronous work with event processing.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        self.clock.advance_to(deadline)

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue entirely; returns the number of events fired."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        return fired


class EventScheduler(Simulator):
    """The fleet-scale event engine: one clock, many actors, one seed.

    Extends :class:`Simulator` with the two facilities a multi-actor
    simulation needs (docs/SIMULATION.md documents both contracts):

    * **per-actor RNG** — :meth:`rng_for` forks a child stream off the
      scheduler's root :class:`~repro.rng.ReproRandom` by string label
      and caches it, so ``rng_for("rack3/service")`` returns the same
      stream no matter when (or in which process shard) it is first
      requested;
    * **observability** — each fired event increments the
      ``sim_events_fired_total`` counter and records one point on the
      ``sim/events`` series through the ambient ``repro.obs`` bundle.
      Both are read via ``obs.get()`` and skipped entirely when
      telemetry is off, so the engine stays observationally invisible
      and draw-for-draw identical either way.
    """

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        rng: Optional[ReproRandom] = None,
        name: str = "sim",
    ) -> None:
        super().__init__(clock=clock)
        self.name = name
        self.rng = rng if rng is not None else make_rng().fork(name)
        self._actor_rngs: Dict[str, ReproRandom] = {}

    def rng_for(self, label: str) -> ReproRandom:
        """The deterministic RNG stream for actor ``label``.

        Forked from the scheduler's root stream by label (never by call
        order) and cached, so repeated calls return the *same* stream
        object and its draw sequence depends only on (seed, label).
        """
        rng = self._actor_rngs.get(label)
        if rng is None:
            rng = self.rng.fork(label)
            self._actor_rngs[label] = rng
        return rng

    def step(self) -> bool:
        """Fire the earliest event, then record it to the obs bundle."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.when)
        event.action()
        self.fired += 1
        tel = obs.get()
        if tel is not None:
            tel.metrics.counter(
                "sim_events_fired_total",
                description="Events fired by the discrete-event scheduler.",
                scheduler=self.name,
            ).inc()
            tel.series.record("sim/events", event.when, 1.0)
        return True
