"""Deep Note reproduction library.

A physics-grounded simulation of the HotStorage '23 paper *Deep Note:
Can Acoustic Interference Damage the Availability of Hard Disk Storage
in Underwater Data Centers?* — underwater acoustics, enclosure
vibration, an HDD servo/fault simulator, a storage software stack
(journaling filesystem, server OS model, LSM key-value store), FIO and
db_bench workload tools, and the attack toolkit that ties them together.

Quickstart::

    from repro import AttackConfig, AttackSession

    session = AttackSession()                 # Scenario 2, tank water
    sweep = session.frequency_sweep([300, 650, 1000, 2000, 8000])
    for point in sweep.points:
        print(point.frequency_hz, point.write_mbps, point.read_mbps)
"""

from .core.attack import AttackSession, FrequencySweepResult, RangeTestResult
from .core.attacker import AcousticAttacker, AttackConfig
from .core.coupling import AttackCoupling
from .core.environment import UnderwaterEnvironment
from .core.monitor import AvailabilityMonitor, CrashReport
from .core.scenario import Scenario
from .hdd.drive import HardDiskDrive
from .hdd.servo import OpKind, VibrationInput
from .workloads.fio import FioJob, FioResult, FioTester, IOMode

__version__ = "1.0.0"

__all__ = [
    "AttackSession",
    "FrequencySweepResult",
    "RangeTestResult",
    "AcousticAttacker",
    "AttackConfig",
    "AttackCoupling",
    "UnderwaterEnvironment",
    "AvailabilityMonitor",
    "CrashReport",
    "Scenario",
    "HardDiskDrive",
    "OpKind",
    "VibrationInput",
    "FioJob",
    "FioResult",
    "FioTester",
    "IOMode",
    "__version__",
]
