#!/usr/bin/env python3
"""Defender's view: detect the attack and read the forensics.

The paper's Section 5 calls for defenses; detection comes first.  This
example runs the attack against an instrumented victim and shows what a
defender sees: the hydrophone picking the tone out of Wenz-curve
ambient noise, SMART telemetry growing a retry storm, and the fused
detector raising an alarm with the attack frequency — plus how far away
the attacker's own speaker is audible (they are not stealthy!).

Run:  python examples/attack_detection.py
"""

from repro.acoustics.ambient import AmbientNoise
from repro.core.attacker import AttackConfig
from repro.core.coupling import AttackCoupling
from repro.core.detector import (
    AcousticAttackDetector,
    HydrophoneMonitor,
    ThroughputAnomalyDetector,
)
from repro.hdd.drive import HardDiskDrive
from repro.hdd.smart import SmartLog
from repro.workloads.fio import FioJob, FioTester, IOMode


def main() -> None:
    drive = HardDiskDrive()
    fio = FioTester(drive)
    coupling = AttackCoupling.paper_setup()

    baseline = fio.run(FioJob(mode=IOMode.SEQ_WRITE, runtime_s=1.0)).throughput_mbps
    print(f"baseline write throughput: {baseline:.1f} MB/s")

    noise = AmbientNoise(shipping_level=0.4, wind_speed_ms=5.0)
    hydrophone = HydrophoneMonitor(
        ambient_level_db=noise.band_level_db(600.0, 700.0), margin_db=15.0
    )
    telemetry = ThroughputAnomalyDetector(drive, baseline_mbps=baseline)
    detector = AcousticAttackDetector(hydrophone, telemetry)
    smart = SmartLog(drive)

    # The attacker turns their speaker on at 12 cm: heavy write loss.
    config = AttackConfig(650.0, 140.0, 0.12)
    coupling.apply(drive, config)
    pressure = coupling.wall_pressure_pa(config)

    print("\nattack on; defender monitoring...")
    result = fio.run(FioJob(mode=IOMode.SEQ_WRITE, runtime_s=3.0))
    now = drive.clock.now
    for i in range(31):
        hydrophone.observe_pressure(now - 3.0 + 0.1 * i, 650.0, pressure)
    telemetry.report_throughput(result.throughput_mbps)
    smart.sample()

    print(f"  measured throughput: {result.throughput_mbps:.2f} MB/s")
    print(f"  SMART: {smart.retry_rate_per_second():.0f} retries/s, "
          f"fingerprint={'YES' if smart.vibration_fingerprint() else 'no'}")

    alarm = detector.evaluate(now)
    if alarm is not None:
        print(f"  ALARM: {alarm}")
    else:
        print("  no alarm (detector missed it!)")

    print("\nSMART report after the incident:")
    for line in smart.report().splitlines():
        print(f"  {line}")

    print("\nhow far away is the attacker audible?")
    for site_name, site in (("quiet site", AmbientNoise.quiet_site()),
                            ("average", AmbientNoise()),
                            ("busy harbor", AmbientNoise.harbor())):
        reach = site.detection_range_m(140.0, 650.0)
        print(f"  {site_name:<12} hydrophone hears the 140 dB tone out to ~{reach:7.1f} m "
              f"(attack only works inside ~0.25 m)")


if __name__ == "__main__":
    main()
