#!/usr/bin/env python3
"""Open-water attack range planning (the paper's Section 5 questions).

How far could the attack reach outside the lab tank?  This example uses
the acoustics substrate directly: Medwin sound speed, Ainslie-McColm
absorption, and spherical spreading, across real deployment sites — the
fresh-water tank, the Baltic at 50 m (the paper's 0.038 dB/km example),
and a Natick-like open-ocean site — for both the commercial speaker and
a military-grade projector.

Run:  python examples/range_planning.py
"""

from repro.acoustics.medium import WaterConditions
from repro.acoustics.sound_speed import sound_speed_medwin
from repro.core.attacker import AcousticAttacker, AttackConfig
from repro.core.coupling import AttackCoupling
from repro.core.environment import UnderwaterEnvironment
from repro.core.scenario import Scenario
from repro.hdd.profiles import BARRACUDA_500GB
from repro.hdd.servo import OpKind


def max_write_fault_range(environment, level_db: float, tone_hz: float = 650.0) -> float:
    """Bisect the farthest distance where write faults are still induced."""
    import math

    coupling = AttackCoupling(
        environment=environment,
        scenario=Scenario.scenario_2(),
        attacker=AcousticAttacker.military_rig(),
    )
    servo = BARRACUDA_500GB.servo

    def ratio(distance: float) -> float:
        vibration = coupling.vibration_at_drive(
            AttackConfig(tone_hz, level_db, distance)
        )
        return servo.offtrack_amplitude_m(vibration) / servo.threshold_m(OpKind.WRITE)

    if ratio(0.01) < 1.0:
        return 0.0
    low, high = 0.01, 1_000_000.0
    if ratio(high) >= 1.0:
        return high
    for _ in range(200):
        mid = math.sqrt(low * high)
        if mid <= low or mid >= high:
            break
        if ratio(mid) >= 1.0:
            low = mid
        else:
            high = mid
    return low


def main() -> None:
    sites = {
        "lab tank (fresh water)": WaterConditions.tank(),
        "Baltic Sea, 50 m": WaterConditions.baltic_50m(),
        "Natick-like site, 36 m": WaterConditions.natick_site(),
    }

    print("== water conditions ==")
    for name, cond in sites.items():
        speed = sound_speed_medwin(cond.temperature_c, cond.salinity_ppt, cond.depth_m)
        env = UnderwaterEnvironment.open_water(cond)
        alpha = env.propagation.absorption_db_per_km(500.0)
        print(f"{name:<26} c = {speed:7.1f} m/s   alpha(500 Hz) = {alpha:.4f} dB/km")

    print("\n== maximum range for sustained write faults at 650 Hz ==")
    print(f"{'site':<26} {'140 dB (commercial)':>22} {'200 dB':>12} {'220 dB (sonar-class)':>22}")
    for name, cond in sites.items():
        env = UnderwaterEnvironment.open_water(cond)
        cells = []
        for level in (140.0, 200.0, 220.0):
            reach = max_write_fault_range(env, level)
            cells.append(f"{reach:9.1f} m")
        print(f"{name:<26} {cells[0]:>22} {cells[1]:>12} {cells[2]:>22}")

    print(
        "\nSpreading dominates at these frequencies (absorption is ~0.04 dB/km),"
        "\nso every +20 dB of source level buys ~10x of range — the paper's"
        "\nobservation that a powerful speaker changes the threat model entirely."
    )


if __name__ == "__main__":
    main()
