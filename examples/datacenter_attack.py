#!/usr/bin/env python3
"""Attack a whole underwater datacenter as one discrete-event campaign.

This is the paper's headline scenario at fleet scale: 4 racks x 50
storage towers x 5 bays = 1000 drives behind submerged container walls,
serving an open-loop host workload, while a speaker holds the
vulnerable tone for a 30-second window.  Everything — attack edges,
service ticks, RAID rebuilds, health monitors — runs as events on one
deterministic :class:`repro.sim.EventScheduler` (docs/SIMULATION.md);
the fleet topology and availability accounting come from
:class:`repro.core.fleet.FleetSim` (docs/FLEET.md).

Three things to notice:

* **physics once per rack** — every tower shares the rack's wall and
  water column, so each attack edge evaluates the batched vecphys
  kernels on one reference tower and broadcasts to all 250 drives;
* **common-mode failure** — when the tone stalls a bay it stalls that
  bay in *every* tower of the rack at once, so RAID's independent-
  failure math buys far less than on mechanical faults;
* **determinism** — the per-rack outcomes are a pure function of
  (FleetSpec, rack index); re-run the script and every number is
  byte-identical (`deepnote fleet` shards the same campaign across
  worker processes with identical results).

Run:  python examples/datacenter_attack.py
"""

from repro.core.fleet import AttackWindow, FleetSim, FleetSpec

# The campaign: a minute of virtual serving time, with the paper's
# 650 Hz tone held at 139 dB from 5 cm for t=10s..40s.
SPEC = FleetSpec(
    racks=4,
    towers_per_rack=50,
    bays=5,
    raid="raid5",
    duration_s=60.0,
    request_rate_hz=200.0,
    attacks=(
        AttackWindow(
            start_s=10.0,
            duration_s=30.0,
            frequency_hz=650.0,
            source_level_db=139.0,
            distance_m=0.05,
        ),
    ),
    seed=7,
)


def main() -> None:
    sim = FleetSim(SPEC)
    queued = len(sim.scheduler.queue)
    print(
        f"fleet: {SPEC.racks} racks x {SPEC.towers_per_rack} towers x "
        f"{SPEC.bays} bays = {SPEC.drive_count} drives, "
        f"{queued} events queued on one scheduler\n"
    )
    result = sim.run()
    print(result.render())

    window = SPEC.attacks[0]
    quiet_ops = sum(o.ops for o in result.outcomes) * (
        1.0 - window.duration_s / SPEC.duration_s
    )
    print(
        f"\nthe {window.frequency_hz:.0f} Hz window turned "
        f"{100.0 * (1.0 - result.availability()):.1f}% of {result.ops} host "
        f"requests into errors ({quiet_ops:.0f} ops ran outside the window); "
        f"{sum(o.rebuilds for o in result.outcomes)} RAID members rebuilt "
        f"after the tone lifted."
    )
    print(
        f"scheduler fired {sim.scheduler.fired} events to "
        f"{sim.scheduler.now:.0f}s virtual time."
    )


if __name__ == "__main__":
    main()
