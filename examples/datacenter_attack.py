#!/usr/bin/env python3
"""Attack a running underwater "data center" node end to end.

This is the paper's headline scenario writ small: an Ubuntu-class
server with an Ext4 root filesystem and a RocksDB-like database serving
a key-value workload, all inside a submerged container.  The attacker
sweeps for a vulnerable frequency, then holds the best tone until the
whole software stack crashes — filesystem, OS, and database — exactly
the cascade of Table 3.  A rack-level prologue shows the same tone
degrading every bay of a storage tower at once (the common-mode
property), evaluated through the batched fleet kernels.

Run:  python examples/datacenter_attack.py
"""

from repro import perf, vecphys
from repro.core.attacker import AttackConfig
from repro.core.coupling import AttackCoupling
from repro.core.fleet import DriveRack
from repro.core.monitor import AvailabilityMonitor
from repro.core.scenario import Scenario
from repro.experiments.apps import Ext4Victim, RocksDBVictim, UbuntuVictim
from repro.hdd.profiles import BARRACUDA_500GB
from repro.hdd.servo import OpKind

SWEEP_GRID = [float(f) for f in range(100, 4001, 50)]


def find_vulnerable_tone(coupling: AttackCoupling) -> float:
    """Step 1 — reconnaissance sweep (Section 3's frequency sweep).

    The attacker predicts (or remotely observes) which tones disturb
    the target; here we use the physical model directly, as an attacker
    studying an identical drive would.  With numpy present the whole
    grid evaluates in one :func:`repro.vecphys.sweep_surface` call
    (bit-identical to the scalar loop below).
    """
    servo = BARRACUDA_500GB.servo
    base = AttackConfig(frequency_hz=650.0, source_level_db=140.0, distance_m=0.01)
    threshold = servo.threshold_m(OpKind.WRITE)
    if perf.vec_physics_enabled() and vecphys.available():
        surface = vecphys.sweep_surface(coupling, base, SWEEP_GRID, servo=servo)
        ratios = [offtrack / threshold for offtrack in surface["offtrack_m"].tolist()]
    else:
        ratios = []
        for freq in SWEEP_GRID:
            vibration = coupling.vibration_at_drive(base.at_frequency(freq))
            ratios.append(servo.offtrack_amplitude_m(vibration) / threshold)
    best_freq, best_ratio = 0.0, 0.0
    for freq, ratio in zip(SWEEP_GRID, ratios):
        if ratio > best_ratio:
            best_freq, best_ratio = freq, ratio
    print(f"sweep: best tone {best_freq:.0f} Hz (predicted off-track ratio {best_ratio:.1f}x)")
    return best_freq


def rack_view(tone: float) -> None:
    """Step 0 — why this matters at datacenter scale.

    One speaker, one wall, five bays: the shared source/water/wall
    stage is computed once per rack call and broadcast across bays, so
    scanning a whole tower costs barely more than scanning one drive.
    """
    rack = DriveRack(bays=5)
    config = AttackConfig(frequency_hz=tone, source_level_db=140.0, distance_m=0.01)
    rack.apply_attack(config)
    probabilities = rack.write_success_probabilities()
    summary = ", ".join(
        f"bay{bay}={p:.3f}" for bay, p in sorted(probabilities.items())
    )
    print(f"rack view at {tone:.0f} Hz: p(write) {summary}")
    print(f"  stalled: {rack.stalled_bays()}  healthy: {rack.healthy_bays()}")


def main() -> None:
    coupling = AttackCoupling.paper_setup(Scenario.scenario_2())
    tone = find_vulnerable_tone(coupling)
    rack_view(tone)

    print("\nstep 2 — hold the tone and watch the stack die:")
    victims = [Ext4Victim(), UbuntuVictim(), RocksDBVictim()]
    config = AttackConfig(frequency_hz=tone, source_level_db=140.0, distance_m=0.01)
    for victim in victims:
        coupling.apply(victim.drive, config)
        monitor = AvailabilityMonitor(victim.drive.clock)
        report = monitor.watch(victim, deadline_s=240.0)
        if report is None:
            print(f"  {victim.name:<8} survived the attack window")
        else:
            print(f"  {victim.name:<8} crashed after {report.time_to_crash_s:6.1f} s "
                  f"— {report.error_output[:80]}")

    print("\nThe dmesg trail on the Ubuntu victim:")
    ubuntu = victims[1]
    for entry in ubuntu.kernel.dmesg.tail(5):
        print(f"  {entry}")


if __name__ == "__main__":
    main()
