#!/usr/bin/env python3
"""Quickstart: attack one drive and watch its throughput collapse.

Builds the paper's Scenario 2 (HDD in a storage tower inside a plastic
container, submerged in the tank), plays the best attack tone (650 Hz,
140 dB SPL re 1 uPa) from 1 cm, and measures FIO sequential throughput
before, during, and after the attack.

Run:  python examples/quickstart.py
"""

from repro import AttackConfig, AttackSession, IOMode
from repro.core.coupling import AttackCoupling
from repro.core.scenario import Scenario
from repro.hdd.drive import HardDiskDrive
from repro.workloads.fio import FioJob, FioTester


def main() -> None:
    # A fresh victim drive on its own virtual clock.
    drive = HardDiskDrive()
    fio = FioTester(drive)

    # The physical chain: tank water -> plastic container -> storage
    # tower -> drive chassis -> head-stack assembly.
    coupling = AttackCoupling.paper_setup(Scenario.scenario_2())

    def measure(label: str) -> None:
        write = fio.run(FioJob(mode=IOMode.SEQ_WRITE, runtime_s=1.0))
        read = fio.run(FioJob(mode=IOMode.SEQ_READ, runtime_s=1.0))
        write_cell = f"{write.throughput_mbps:5.1f} MB/s" if write.responded else "no response"
        read_cell = f"{read.throughput_mbps:5.1f} MB/s" if read.responded else "no response"
        print(f"{label:<22} write {write_cell:>12}   read {read_cell:>12}")

    print("== Deep Note quickstart: 650 Hz / 140 dB / 1 cm, Scenario 2 ==")
    measure("before attack")

    # Speaker on.
    coupling.apply(drive, AttackConfig.paper_best())
    measure("attack at 1 cm")

    # Pull the speaker back to 15 cm: writes still suffer, reads recover.
    coupling.apply(drive, AttackConfig.paper_best().at_distance(0.15))
    measure("attack at 15 cm")

    # Speaker off: the drive recovers completely (availability attack,
    # not a destructive one).
    coupling.apply(drive, None)
    measure("after attack")

    print(
        f"\ndrive stats: {drive.stats.retries} retries, "
        f"{drive.stats.timeouts} timeouts, {drive.stats.medium_errors} medium errors"
    )


if __name__ == "__main__":
    main()
