#!/usr/bin/env python3
"""Plan and execute both attacker objectives from the threat model.

Section 3 describes two attackers: one who wants *controlled delays*
(intermittent tones, nothing crashes, operators see a mysteriously slow
system) and one who wants *crashes* (hold the tone).  This example uses
the campaign planner to build both schedules against Scenario 2 and
runs them against a filesystem worker, printing the work-rate damage
and the crash signature.

Run:  python examples/attack_campaigns.py
"""

from repro.core.campaign import CampaignPlanner
from repro.core.coupling import AttackCoupling
from repro.core.scenario import Scenario
from repro.experiments.objectives import run_objective_comparison


def main() -> None:
    planner = CampaignPlanner(AttackCoupling.paper_setup(Scenario.scenario_2()))

    print("== reconnaissance ==")
    band = planner.vulnerable_band()
    tone = planner.best_tone()
    print(f"predicted vulnerable band: {band[0]:.0f} - {band[1]:.0f} Hz")
    print(
        f"best tone: {tone.frequency_hz:.0f} Hz "
        f"(write margin {tone.write_ratio:.1f}x, stalls servo: {tone.stalls_servo})"
    )
    print(
        f"max distance that still stalls the drive: "
        f"{planner.max_stall_distance_m(tone.frequency_hz) * 100:.1f} cm"
    )

    print("\n== schedules ==")
    degrade = planner.plan_degradation_campaign(total_s=260.0, duty_cycle=0.3, burst_s=20.0)
    crash = planner.plan_crash_campaign()
    print(
        f"degrade: {len(degrade.bursts)} bursts of 20 s "
        f"({degrade.total_on_time_s:.0f} s of transmission)"
    )
    print(f"crash:   one burst of {crash.total_on_time_s:.0f} s")

    print("\n== execution against a filesystem worker ==")
    baseline, degraded, crashed, table = run_objective_comparison(total_s=260.0)
    print(table.render())
    slowdown = 1.0 - degraded.work_rate_per_s / baseline.work_rate_per_s
    print(
        f"\nthe intermittent campaign cut the victim's work rate by "
        f"{slowdown:.0%} with {degraded.work_attempted - degraded.work_completed} "
        f"failed operations — delays, not errors, exactly objective (i)."
    )
    print(
        f"the sustained campaign crashed the filesystem after "
        f"{crashed.crash.time_to_crash_s:.0f} s — objective (ii)."
    )


if __name__ == "__main__":
    main()
