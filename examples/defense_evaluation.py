#!/usr/bin/env python3
"""Evaluate candidate defenses from the paper's Section 5.

Tries acoustic absorbers, elastomer vibration isolators, and firmware
servo hardening against the calibrated attack, reporting the insertion
loss each provides, whether the attack still works through it, and the
thermal price the defense charges a sealed subsea vessel.

Run:  python examples/defense_evaluation.py
"""

from repro.core.attacker import AttackConfig
from repro.core.coupling import AttackCoupling
from repro.core.defenses import (
    AbsorbentCoating,
    DefendedScenario,
    FirmwareNotchFilter,
    VibrationIsolators,
)
from repro.core.scenario import Scenario
from repro.hdd.drive import HardDiskDrive
from repro.workloads.fio import FioJob, FioTester, IOMode


def residual_throughput(scenario, tone_hz: float = 650.0) -> float:
    """Measured write throughput under attack with ``scenario`` installed."""
    drive = HardDiskDrive()
    defense = getattr(scenario, "defense", None)
    if defense is not None:
        # Firmware defenses change the drive itself, not the enclosure.
        drive.profile.servo = defense.harden_servo(drive.profile.servo)
    coupling = AttackCoupling.paper_setup(scenario)
    coupling.apply(drive, AttackConfig(tone_hz, 140.0, 0.01))
    result = FioTester(drive).run(FioJob(mode=IOMode.SEQ_WRITE, runtime_s=1.0))
    return result.throughput_mbps


def main() -> None:
    base = Scenario.scenario_2()
    baseline_drive = HardDiskDrive()
    baseline = FioTester(baseline_drive).run(
        FioJob(mode=IOMode.SEQ_WRITE, runtime_s=1.0)
    ).throughput_mbps
    print(f"healthy write throughput: {baseline:.1f} MB/s")
    print(f"undefended, under attack: {residual_throughput(base):.1f} MB/s\n")

    defenses = [
        AbsorbentCoating(thickness_m=0.02),
        AbsorbentCoating(thickness_m=0.05),
        AbsorbentCoating(thickness_m=0.10),
        VibrationIsolators(corner_hz=80.0),
        VibrationIsolators(corner_hz=40.0),
        FirmwareNotchFilter(corner_multiplier=1.8),
        FirmwareNotchFilter(corner_multiplier=3.0),
    ]
    print(f"{'defense':<38} {'write MB/s under attack':>24} {'thermal cost':>14}")
    for defense in defenses:
        defended = DefendedScenario(base, defense)
        throughput = residual_throughput(defended)
        verdict = "attack defeated" if throughput > 0.9 * baseline else (
            "attack weakened" if throughput > 1.0 else "attack still works")
        print(
            f"{defense.name:<38} {throughput:>12.1f}  ({verdict:<15}) "
            f"{defense.thermal_penalty_c:>10.1f} C"
        )

    print(
        "\nNote the trade-off the paper warns about: the absorbers that stop the"
        "\nattack are exactly the ones that insulate the vessel and cost cooling."
    )


if __name__ == "__main__":
    main()
