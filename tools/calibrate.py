"""Calibration scan for the coupling-chain constants.

Prints the predicted off-track excursion (as multiples of the write
threshold, read threshold, and servo stall limit) across frequency for
the three scenarios at 1 cm / 140 dB, and across distance at 650 Hz for
Scenario 2 — the anchors described in repro/core/calibration.py.

Run:  python tools/calibrate.py
"""

from __future__ import annotations

from repro.core.attacker import AttackConfig
from repro.core.coupling import AttackCoupling
from repro.core.scenario import Scenario
from repro.hdd.profiles import make_barracuda_profile


def main() -> None:
    from repro.hdd.servo import OpKind

    profile = make_barracuda_profile()
    servo = profile.servo
    t_w = servo.threshold_m(OpKind.WRITE)
    t_r = servo.threshold_m(OpKind.READ)
    limit = servo.servo_limit_m
    print(f"thresholds: write={t_w*1e9:.1f}nm read={t_r*1e9:.1f}nm stall={limit*1e9:.1f}nm")

    print("\n== frequency scan at 1 cm / 140 dB ==")
    header = f"{'freq':>7} " + "".join(
        f"{name:>26}" for name in ("Scenario 1", "Scenario 2", "Scenario 3")
    )
    print(header + "   (A nm | A/Tw | A/stall)")
    freqs = [100, 150, 200, 250, 300, 400, 500, 650, 800, 1000, 1200, 1300,
             1500, 1700, 2000, 2500, 3000, 4000, 6000, 8000]
    couplings = [AttackCoupling.paper_setup(s) for s in Scenario.all_three()]
    for f in freqs:
        cfg = AttackConfig(frequency_hz=f, source_level_db=140.0, distance_m=0.01)
        cells = []
        for coupling in couplings:
            vib = coupling.vibration_at_drive(cfg)
            a = servo.offtrack_amplitude_m(vib)
            cells.append(f"{a*1e9:8.1f} {a/t_w:6.2f} {a/limit:6.2f}")
        print(f"{f:7.0f} " + " |".join(cells))

    print("\n== distance scan at 650 Hz, Scenario 2 ==")
    coupling = AttackCoupling.paper_setup(Scenario.scenario_2())
    for cm in (1, 5, 10, 15, 20, 25):
        cfg = AttackConfig(frequency_hz=650.0, source_level_db=140.0, distance_m=cm / 100)
        vib = coupling.vibration_at_drive(cfg)
        a = servo.offtrack_amplitude_m(vib)
        p_w = servo.success_probability(OpKind.WRITE, vib)
        p_r = servo.success_probability(OpKind.READ, vib)
        print(
            f"{cm:3d} cm  A={a*1e9:7.1f} nm  A/Tw={a/t_w:5.2f}  A/Tr={a/t_r:5.2f} "
            f" A/stall={a/limit:5.2f}  p_w={p_w:6.3f}  p_r={p_r:6.3f}"
        )


if __name__ == "__main__":
    main()
