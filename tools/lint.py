#!/usr/bin/env python
"""Lint the codebase with whatever checker this machine has.

Tries, in order of decreasing strictness, and uses the first available:

1. ``ruff check`` — fast and broad;
2. ``pyflakes`` — undefined names, unused imports;
3. ``compileall`` — bare syntax check, always available.

Exit status is the checker's, so ``make lint`` and CI can gate on it
without requiring any particular tool to be installed.
"""

from __future__ import annotations

import compileall
import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tests", "benchmarks", "tools", "examples"]


def _existing_targets() -> list[str]:
    return [t for t in TARGETS if (ROOT / t).is_dir()]


def _run(argv: list[str]) -> int:
    print("+", " ".join(argv), file=sys.stderr)
    return subprocess.run(argv, cwd=ROOT).returncode


def main() -> int:
    targets = _existing_targets()
    if importlib.util.find_spec("ruff") is not None:
        return _run([sys.executable, "-m", "ruff", "check", *targets])
    if importlib.util.find_spec("pyflakes") is not None:
        return _run([sys.executable, "-m", "pyflakes", *targets])
    print("no ruff/pyflakes found; falling back to a syntax check", file=sys.stderr)
    ok = all(
        compileall.compile_dir(str(ROOT / t), quiet=1, force=True) for t in targets
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
