#!/usr/bin/env python
"""Lint the codebase: a generic checker plus the repo-specific deepcheck.

Stage 1 (generic) tries, in order of decreasing strictness, and uses the
first available — or the one forced with ``--checker``:

1. ``ruff check`` — fast and broad;
2. ``pyflakes`` — undefined names, unused imports;
3. ``compileall`` — bare syntax check, always available.

Stage 2 runs ``deepcheck`` (tools/deepcheck), the AST-based invariant
linter enforcing determinism, clock, RNG, and telemetry discipline (see
docs/STATIC_ANALYSIS.md).  Skip it with ``--no-deepcheck``.

Stage 3 enforces docstrings on the simulation-engine surface: every
public module, class, and function under ``src/repro/sim/`` and in
``src/repro/core/fleet.py`` must carry one (the packages document a
determinism-and-units contract per docs/SIMULATION.md, so an
undocumented public name there is a contract hole, not a style nit).
Skip it with ``--no-docstrings``.

The selected checker and its version are printed to stderr so CI logs
are unambiguous about what actually gated.  Exit status is the worst of
all stages.
"""

from __future__ import annotations

import argparse
import ast
import compileall
import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tests", "benchmarks", "tools", "examples"]

#: Packages whose public surface must be fully docstring-covered.  These
#: are the modules that carry the simulation determinism/units contract;
#: see docs/SIMULATION.md and docs/FLEET.md.
DOCSTRING_SCOPE = [Path("src") / "repro" / "sim", Path("src") / "repro" / "core" / "fleet.py"]

#: Deepcheck's rule-violation corpus is linted by deepcheck's own
#: self-test, not by the generic checkers (its snippets intentionally
#: contain code a strict linter may dislike).
GENERIC_EXCLUDE = Path("tools") / "deepcheck" / "corpus"


def _existing_targets() -> list[str]:
    return [t for t in TARGETS if (ROOT / t).is_dir()]


def _run(argv: list[str]) -> int:
    print("+", " ".join(argv), file=sys.stderr)
    return subprocess.run(argv, cwd=ROOT).returncode


def _dist_version(name: str) -> str:
    try:
        from importlib.metadata import version

        return version(name)
    except Exception:
        return "unknown version"


def _announce(checker: str, version: str) -> None:
    print(f"lint: generic checker = {checker} ({version})", file=sys.stderr)


def _python_files(targets: list[str]) -> list[str]:
    """Every .py path under the targets, minus the deepcheck corpus."""
    files: list[str] = []
    for target in targets:
        for path in sorted((ROOT / target).rglob("*.py")):
            rel = path.relative_to(ROOT)
            if GENERIC_EXCLUDE in rel.parents:
                continue
            files.append(str(rel))
    return files


def _pick_checker(requested: str) -> str:
    if requested != "auto":
        return requested
    if importlib.util.find_spec("ruff") is not None:
        return "ruff"
    if importlib.util.find_spec("pyflakes") is not None:
        return "pyflakes"
    return "compileall"


def run_generic(checker: str) -> int:
    targets = _existing_targets()
    if checker == "none":
        print("lint: generic checker skipped (--checker none)", file=sys.stderr)
        return 0
    if checker == "ruff":
        if importlib.util.find_spec("ruff") is None:
            print("lint: ruff requested but not installed", file=sys.stderr)
            return 2
        _announce("ruff", _dist_version("ruff"))
        return _run(
            [
                sys.executable,
                "-m",
                "ruff",
                "check",
                "--exclude",
                str(GENERIC_EXCLUDE),
                *targets,
            ]
        )
    if checker == "pyflakes":
        if importlib.util.find_spec("pyflakes") is None:
            print("lint: pyflakes requested but not installed", file=sys.stderr)
            return 2
        _announce("pyflakes", _dist_version("pyflakes"))
        return _run([sys.executable, "-m", "pyflakes", *_python_files(targets)])
    if checker == "compileall":
        _announce("compileall", f"python {sys.version.split()[0]}")
        ok = all(
            compileall.compile_dir(str(ROOT / t), quiet=1, force=True)
            for t in targets
        )
        return 0 if ok else 1
    print(f"lint: unknown checker {checker!r}", file=sys.stderr)
    return 2


def _docstring_scope_files() -> list[Path]:
    files: list[Path] = []
    for entry in DOCSTRING_SCOPE:
        path = ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
    return files


def _missing_docstrings(tree: ast.Module) -> list[tuple[int, str]]:
    """(line, description) for every undocumented public def/class/module.

    A name is public when neither it nor any enclosing class is
    underscore-prefixed; dunders other than the module itself are
    treated as private (their contract is the protocol they implement).
    """
    missing: list[tuple[int, str]] = []
    if ast.get_docstring(tree) is None:
        missing.append((1, "module"))

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if child.name.startswith("_"):
                continue
            qualname = f"{prefix}{child.name}"
            kind = "class" if isinstance(child, ast.ClassDef) else "function"
            if ast.get_docstring(child) is None:
                missing.append((child.lineno, f"{kind} {qualname}"))
            if isinstance(child, ast.ClassDef):
                visit(child, f"{qualname}.")

    visit(tree, "")
    return sorted(missing)


def run_docstrings() -> int:
    files = _docstring_scope_files()
    print(
        f"lint: docstring coverage over {len(files)} simulation-engine files",
        file=sys.stderr,
    )
    status = 0
    for path in files:
        rel = path.relative_to(ROOT)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(rel))
        for lineno, what in _missing_docstrings(tree):
            print(f"{rel}:{lineno}: missing docstring on public {what}")
            status = 1
    return status


def run_deepcheck() -> int:
    sys.path.insert(0, str(ROOT / "tools"))
    from deepcheck import __version__ as deepcheck_version
    from deepcheck.cli import main as deepcheck_main

    print(f"lint: repo checker = deepcheck ({deepcheck_version})", file=sys.stderr)
    return deepcheck_main([])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--checker",
        choices=("auto", "ruff", "pyflakes", "compileall", "none"),
        default="auto",
        help="generic checker to use (default: best available)",
    )
    parser.add_argument(
        "--no-deepcheck",
        action="store_true",
        help="skip the repo-specific invariant linter",
    )
    parser.add_argument(
        "--no-docstrings",
        action="store_true",
        help="skip the simulation-engine docstring coverage check",
    )
    args = parser.parse_args(argv)

    generic_status = run_generic(_pick_checker(args.checker))
    docstring_status = 0 if args.no_docstrings else run_docstrings()
    deepcheck_status = 0 if args.no_deepcheck else run_deepcheck()
    return max(generic_status, docstring_status, deepcheck_status)


if __name__ == "__main__":
    sys.exit(main())
