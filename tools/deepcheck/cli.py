"""Command-line front end for deepcheck.

Run from the repo root (all paths are relative to ``--root``)::

    python tools/deepcheck                  # gate src/ against the baseline
    python tools/deepcheck --format json    # machine-readable findings
    python tools/deepcheck --select DC01    # one rule only
    python tools/deepcheck --write-baseline # grandfather current findings
    python tools/deepcheck --self-test      # run the good/bad corpus

Exit status: 0 clean, 1 findings (or failed self-test), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import Baseline
from .engine import Engine
from .rules import ALL_RULES, rule_catalog

_DEFAULT_ROOT = Path(__file__).resolve().parent.parent.parent
_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

#: Virtual location corpus snippets are analyzed at: inside the sim core,
#: where every rule's scope applies.
CORPUS_VIRTUAL_PATH = "src/repro/core/corpus_snippet.py"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deepcheck",
        description="AST-based invariant linter for the Deep Note reproduction.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=["src"],
        help="files or directories to check, relative to --root (default: src)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=_DEFAULT_ROOT,
        help="repository root used for rule scoping (default: auto-detected)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: {_DEFAULT_BASELINE.name} beside the tool)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (e.g. DC01,DC03)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check every corpus snippet triggers (or stays clean of) its rule",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    return parser


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip() for token in raw.split(",") if token.strip()]


def list_rules(stream=sys.stdout) -> int:
    for meta in rule_catalog():
        stream.write(f"{meta['id']}  {meta['name']}\n")
        stream.write(f"      {meta['rationale']}\n")
    return 0


def self_test(stream=sys.stdout) -> int:
    """Run every corpus snippet; bad ones must trip their rule, good ones none.

    Corpus files are named ``dcNN_bad_*.py`` / ``dcNN_good_*.py``; the
    prefix names the rule under test.  Good snippets must be clean under
    *all* rules, so the corpus doubles as a false-positive regression net.
    """
    engine = Engine(root=_DEFAULT_ROOT)
    engine._env_registry = frozenset()  # corpus is checked without a registry
    known_ids = {rule.id for rule in ALL_RULES}
    failures: List[str] = []
    snippets = sorted(CORPUS_DIR.glob("dc*_*.py"))
    if not snippets:
        stream.write(f"deepcheck self-test: no corpus found in {CORPUS_DIR}\n")
        return 1
    for snippet in snippets:
        rule_id = snippet.name[:4].upper()
        kind = snippet.name.split("_")[1]
        if rule_id not in known_ids or kind not in ("bad", "good"):
            failures.append(f"{snippet.name}: unrecognized corpus file name")
            continue
        findings, _suppressed, error = engine.check_source(
            snippet.read_text(encoding="utf-8"), CORPUS_VIRTUAL_PATH
        )
        if error is not None:
            failures.append(f"{snippet.name}: {error}")
            continue
        hit_ids = {finding.rule for finding in findings}
        if kind == "bad" and rule_id not in hit_ids:
            failures.append(
                f"{snippet.name}: expected a {rule_id} finding, got {sorted(hit_ids) or 'none'}"
            )
        elif kind == "good" and hit_ids:
            locations = ", ".join(f.render() for f in findings)
            failures.append(f"{snippet.name}: expected clean, got: {locations}")
    for failure in failures:
        stream.write(f"deepcheck self-test FAIL: {failure}\n")
    stream.write(
        f"deepcheck self-test: {len(snippets) - len(failures)}/{len(snippets)} "
        "corpus snippets behaved\n"
    )
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return list_rules()
    if args.self_test:
        return self_test()

    engine = Engine(
        root=args.root,
        select=_split_ids(args.select),
        ignore=_split_ids(args.ignore),
    )
    result = engine.run(args.targets)

    for error in result.parse_errors:
        print(f"deepcheck: error: {error}", file=sys.stderr)
    if result.parse_errors:
        return 2

    baseline_path = args.baseline if args.baseline is not None else _DEFAULT_BASELINE

    if args.write_baseline:
        Baseline.from_findings(
            result.findings, reason="grandfathered; justify or fix before relying on it"
        ).save(baseline_path)
        print(
            f"deepcheck: wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    stale: List[dict] = []
    baselined: List = []
    findings = result.findings
    if not args.no_baseline:
        baseline = Baseline.load(baseline_path)
        findings, baselined, stale = baseline.split(result.findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files_checked": result.files_checked,
                    "findings": [f.to_json() for f in findings],
                    "baselined": len(baselined),
                    "suppressed": result.suppressed,
                    "stale_baseline_entries": stale,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        for entry in stale:
            print(
                "deepcheck: warning: stale baseline entry "
                f"({entry.get('rule')} {entry.get('path')}: {entry.get('snippet')!r}) "
                "— the code it excused is gone; delete it",
                file=sys.stderr,
            )
        if not args.quiet:
            print(
                f"deepcheck: {len(findings)} finding(s) in "
                f"{result.files_checked} file(s) "
                f"({len(baselined)} baselined, {result.suppressed} suppressed)",
                file=sys.stderr,
            )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
