"""The deepcheck rule catalog (DC01–DC08).

Every rule encodes one invariant the reproduction's headline claims
depend on, with the scope where the invariant holds.  Rules work purely
on the AST plus a small import-alias map — deepcheck never imports the
code under analysis.

Scopes
------
- *sim scope* (``src/repro/`` minus ``runtime/``): code whose outputs
  must be byte-identical run-to-run and at any worker count.
- *hot-path scope* (``core/ storage/ sim/ workloads/ acoustics/
  vibration/ hdd/ vecphys.py``): code on the per-I/O path whose
  telemetry-off behaviour must be bit-identical to the pre-telemetry
  tree.
- ``runtime/`` is the *wall-clock allowlist*: progress bars, ETAs, and
  ``--point-timeout`` preemption legitimately read real time.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from .engine import FileContext, Finding

SRC_PREFIX = "src/repro/"
RUNTIME_PREFIX = "src/repro/runtime/"

HOT_PATH_PREFIXES = (
    "src/repro/core/",
    "src/repro/storage/",
    "src/repro/sim/",
    "src/repro/workloads/",
    "src/repro/acoustics/",
    "src/repro/vibration/",
    "src/repro/hdd/",
)
HOT_PATH_FILES = ("src/repro/vecphys.py",)


# --------------------------------------------------------------------------
# Import-alias resolution
# --------------------------------------------------------------------------


class ImportMap:
    """Maps local names to the canonical dotted path they were bound to."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds the top-level name.
                        top = alias.name.split(".", 1)[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay package-internal
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path for a Name/Attribute chain, if importable."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.aliases.get(current.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def _finding(ctx: FileContext, rule: "Rule", node: ast.AST, message: str) -> Finding:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0) + 1
    return Finding(
        rule=rule.id,
        path=ctx.relpath,
        line=line,
        col=col,
        message=message,
        snippet=ctx.snippet(line),
    )


class Rule:
    """Base class: subclasses set ``id``/``name``/``rationale``."""

    id: str = "DC??"
    name: str = ""
    rationale: str = ""

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(SRC_PREFIX)

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


# --------------------------------------------------------------------------
# DC01 — no wall clock in simulation code
# --------------------------------------------------------------------------

_WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoWallClock(Rule):
    id = "DC01"
    name = "no-wall-clock"
    rationale = (
        "Simulation results must be a pure function of (config, seed): all "
        "durations are accounted on the virtual Clock so Figure 2 CSVs stay "
        "byte-identical at any --workers count and Table 3 runs in "
        "milliseconds.  One time.time() makes outputs machine- and "
        "load-dependent.  Progress/ETA/timeout code lives in runtime/, the "
        "wall-clock allowlist."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(SRC_PREFIX) and not relpath.startswith(
            RUNTIME_PREFIX
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module in ("time", "datetime"):
                    for alias in node.names:
                        dotted = f"{node.module}.{alias.name}"
                        if dotted in _WALL_CLOCK_NAMES or any(
                            banned.startswith(dotted + ".")
                            for banned in _WALL_CLOCK_NAMES
                        ):
                            yield _finding(
                                ctx,
                                self,
                                node,
                                f"wall-clock import `{dotted}` in simulation "
                                "code — use the virtual clock "
                                "(repro.sim.clock.VirtualClock) or move the "
                                "code under runtime/",
                            )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            resolved = imports.resolve(node)
            if resolved in _WALL_CLOCK_NAMES:
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"wall-clock read `{resolved}` in simulation code — use "
                    "the virtual clock (repro.sim.clock.VirtualClock) or "
                    "move the code under runtime/",
                )


# --------------------------------------------------------------------------
# DC02 — no unseeded / global RNG
# --------------------------------------------------------------------------


class NoUnseededRng(Rule):
    id = "DC02"
    name = "no-unseeded-rng"
    rationale = (
        "Stochastic components draw from label-forked ReproRandom streams "
        "(repro.rng) passed in at construction, so results survive "
        "reordering and parallel scheduling.  Module-level random.* calls "
        "and bare random.Random() seed from OS entropy and silently break "
        "run-to-run reproducibility."
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(SRC_PREFIX) and relpath != "src/repro/rng.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield _finding(
                    ctx,
                    self,
                    node,
                    "import from the global `random` module in sim code — "
                    "accept a repro.rng.ReproRandom (fork(label)) instead",
                )
                continue
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random.Random":
                if not node.args and not node.keywords:
                    yield _finding(
                        ctx,
                        self,
                        node,
                        "bare random.Random() seeds from OS entropy — pass "
                        "an explicit seed, or better, fork a ReproRandom",
                    )
                continue
            if resolved.startswith("random."):
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"module-level `{resolved}()` uses the shared global RNG "
                    "— draw from a label-forked ReproRandom passed in at "
                    "construction",
                )
            elif resolved.startswith("numpy.random.") or resolved == "numpy.random":
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"global numpy RNG `{resolved}` — use "
                    "numpy.random.Generator seeded from the ReproRandom "
                    "stream that owns this component",
                )


# --------------------------------------------------------------------------
# DC03 / DC06 — deterministic iteration and float merge order
# --------------------------------------------------------------------------

_FS_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)
_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _unordered_reason(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Why iterating ``node`` yields a nondeterministic order, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"a {func.id}() call"
        resolved = imports.resolve(func)
        if resolved in _FS_LISTING_CALLS:
            return f"`{resolved}()` (filesystem order)"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _FS_LISTING_METHODS
            and resolved is None
        ):
            return f"`.{func.attr}()` (filesystem order)"
        if isinstance(func, ast.Attribute) and func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            if _unordered_reason(func.value, imports) is not None:
                return f"a set .{func.attr}() result"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        for side in (node.left, node.right):
            if _unordered_reason(side, imports) is not None:
                return "set algebra on unordered operands"
            if (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Attribute)
                and side.func.attr == "keys"
            ):
                return "set algebra over .keys() views"
    return None


class DeterministicIteration(Rule):
    id = "DC03"
    name = "deterministic-iteration"
    rationale = (
        "Snapshot merges, accumulations, and anything written to output "
        "must visit elements in a defined order: set iteration order "
        "depends on hash seeding and insertion history, and directory "
        "listings follow filesystem order.  Wrap the iterable in "
        "sorted(...) before it can influence results."
    )

    _CONSUMER_CALLS = frozenset({"list", "tuple", "enumerate", "max", "min"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            iterables: List[Tuple[ast.AST, str]] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append((node.iter, "for-loop"))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    iterables.append((gen.iter, "comprehension"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._CONSUMER_CALLS
                    and node.args
                ):
                    iterables.append((node.args[0], f"{func.id}()"))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("extend", "join")
                    and node.args
                ):
                    iterables.append((node.args[0], f".{func.attr}()"))
            for expr, context in iterables:
                reason = _unordered_reason(expr, imports)
                if reason is not None:
                    yield _finding(
                        ctx,
                        self,
                        expr,
                        f"{context} iterates {reason}, whose order is "
                        "nondeterministic — wrap in sorted(...) before the "
                        "order can reach results or merges",
                    )


class FloatMergeOrder(Rule):
    id = "DC06"
    name = "float-merge-order"
    rationale = (
        "Float addition is not associative: summing an unordered "
        "collection gives hash-seed-dependent low bits, which is exactly "
        "the kind of drift the byte-identity gates exist to catch.  Sum "
        "over sorted(...) so merge results are stable."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            is_sum = isinstance(func, ast.Name) and func.id == "sum"
            resolved = imports.resolve(func)
            is_fsum = resolved in ("math.fsum", "statistics.fsum")
            if not (is_sum or is_fsum):
                continue
            arg = node.args[0]
            reason = _unordered_reason(arg, imports)
            if reason is None and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                for gen in arg.generators:
                    reason = _unordered_reason(gen.iter, imports)
                    if reason is not None:
                        break
            if reason is not None:
                label = "math.fsum" if is_fsum else "sum"
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"{label}() over {reason}: float accumulation order is "
                    "nondeterministic — sum over sorted(...) instead",
                )


# --------------------------------------------------------------------------
# DC04 — telemetry only through the installed bundle
# --------------------------------------------------------------------------


class TelemetryGuard(Rule):
    id = "DC04"
    name = "telemetry-guard"
    rationale = (
        "Hot-path components capture the installed Telemetry bundle once at "
        "construction (obs.get()) and guard every record, so telemetry-off "
        "runs are bit-identical to the pre-telemetry tree.  Constructing "
        "private Tracer/MetricsRegistry instances or installing bundles "
        "from inside a component bypasses that discipline."
    )

    _BANNED_CONSTRUCTORS = frozenset(
        {"Tracer", "MetricsRegistry", "SeriesRecorder", "Telemetry"}
    )
    _BANNED_HELPERS = frozenset({"install", "session", "tracer"})

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(HOT_PATH_PREFIXES) or relpath in HOT_PATH_FILES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None or not resolved.startswith("repro.obs"):
                continue
            tail = resolved.rsplit(".", 1)[-1]
            if tail in self._BANNED_CONSTRUCTORS:
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"hot-path module constructs `{tail}` directly — "
                    "components must use the installed bundle "
                    "(obs.get(), captured at construction) so telemetry-off "
                    "stays bit-identical",
                )
            elif tail in self._BANNED_HELPERS:
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"hot-path call to `{resolved}()` — installing/iterating "
                    "telemetry sessions is the campaign driver's job; "
                    "components capture obs.get() once at construction",
                )


# --------------------------------------------------------------------------
# DC05 — use the repro.errors taxonomy
# --------------------------------------------------------------------------


class ErrorTaxonomy(Rule):
    id = "DC05"
    name = "error-taxonomy"
    rationale = (
        "Callers distinguish drive faults, filesystem aborts, and campaign "
        "failures by exception type (repro.errors): the retry policy, the "
        "degradation path, and the incident reporter all dispatch on it.  "
        "Bare builtin exceptions and assert-for-validation erase that "
        "signal (and asserts vanish under `python -O`)."
    )

    _BANNED = frozenset(
        {
            "Exception",
            "BaseException",
            "ValueError",
            "TypeError",
            "RuntimeError",
            "AssertionError",
            "OSError",
            "IOError",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield _finding(
                    ctx,
                    self,
                    node,
                    "assert used for runtime validation — raise the matching "
                    "repro.errors type instead (asserts are stripped under "
                    "python -O)",
                )
                continue
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BANNED:
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"bare `raise {name}` — use the repro.errors hierarchy "
                    "(ConfigurationError, UnitError, DriveError, ...) so "
                    "callers can dispatch on type",
                )


# --------------------------------------------------------------------------
# DC07 — unit-suffix sanity
# --------------------------------------------------------------------------

_UNIT_GROUPS: Dict[str, str] = {
    "hz": "frequency",
    "khz": "frequency",
    "db": "level",
    "dba": "level",
    "pa": "pressure",
    "upa": "pressure",
    "kpa": "pressure",
    "m": "length",
    "mm": "length",
    "cm": "length",
    "km": "length",
    "um": "length",
    "s": "time",
    "ms": "time",
    "us": "time",
    "ns": "time",
    "kg": "mass",
    "rad": "angle",
    "deg": "angle",
}


def _unit_suffix(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    if "_" not in ident:
        return None
    suffix = ident.rsplit("_", 1)[-1].lower()
    return suffix if suffix in _UNIT_GROUPS else None


class UnitSuffixSanity(Rule):
    id = "DC07"
    name = "unit-suffix-sanity"
    rationale = (
        "The package stores SI units internally and declares them in name "
        "suffixes (_hz, _db, _pa, _m, _s).  Adding or comparing two "
        "quantities whose suffixes disagree (frequency plus time, metres "
        "versus millimetres) is a unit bug the type system cannot see — "
        "convert through repro.units first."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            pairs: List[Tuple[ast.AST, ast.AST, str]] = []
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                pairs.append((node.left, node.right, op))
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for (left, right), op in zip(
                    zip(operands, operands[1:]), node.ops
                ):
                    if isinstance(
                        op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
                    ):
                        pairs.append((left, right, "comparison"))
            for left, right, op in pairs:
                left_unit = _unit_suffix(left)
                right_unit = _unit_suffix(right)
                if left_unit is None or right_unit is None:
                    continue
                if left_unit == right_unit:
                    continue
                detail = (
                    "different dimensions"
                    if _UNIT_GROUPS[left_unit] != _UNIT_GROUPS[right_unit]
                    else "different scales of the same dimension"
                )
                yield _finding(
                    ctx,
                    self,
                    node,
                    f"arithmetic mixes `_{left_unit}` and `_{right_unit}` "
                    f"operands ({detail}, via {op}) — convert through "
                    "repro.units before combining",
                )


# --------------------------------------------------------------------------
# DC08 — REPRO_* flags must be declared in repro.perf
# --------------------------------------------------------------------------


class FlagRegistry(Rule):
    id = "DC08"
    name = "flag-registry"
    rationale = (
        "Every REPRO_* environment switch must be declared in "
        "repro.perf.ENV_FLAGS with a description: the flags gate "
        "bit-identity caches, so an undeclared read is an invisible knob "
        "the before/after benchmark harness cannot exercise."
    )

    _READ_FUNCS = frozenset({"os.environ.get", "os.getenv"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            flag: Optional[str] = None
            site: Optional[ast.AST] = None
            if isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                is_env_read = resolved in self._READ_FUNCS
                is_flag_helper = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("_env_flag", "env_flag")
                )
                if (is_env_read or is_flag_helper) and node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        flag, site = arg.value, node
            elif isinstance(node, ast.Subscript):
                resolved = imports.resolve(node.value)
                if resolved == "os.environ" and isinstance(node.slice, ast.Constant):
                    if isinstance(node.slice.value, str):
                        flag, site = node.slice.value, node
            if flag is None or site is None or not flag.startswith("REPRO_"):
                continue
            if flag not in ctx.env_registry:
                yield _finding(
                    ctx,
                    self,
                    site,
                    f"env flag `{flag}` is read here but not declared in "
                    "repro.perf.ENV_FLAGS — add it there with a one-line "
                    "description",
                )


ALL_RULES: Tuple[Rule, ...] = (
    NoWallClock(),
    NoUnseededRng(),
    DeterministicIteration(),
    TelemetryGuard(),
    ErrorTaxonomy(),
    FloatMergeOrder(),
    UnitSuffixSanity(),
    FlagRegistry(),
)


def rule_catalog() -> List[Dict[str, str]]:
    """Rule metadata for ``--list-rules`` and the docs-drift test."""
    return [
        {"id": rule.id, "name": rule.name, "rationale": rule.rationale}
        for rule in sorted(ALL_RULES, key=lambda r: r.id)
    ]
