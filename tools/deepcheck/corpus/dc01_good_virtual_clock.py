"""Corpus DC01 good: durations come from the injected virtual clock."""


def elapsed_sim_seconds(clock, start_s: float) -> float:
    return clock.now - start_s
