"""Corpus DC04 good: capture the installed bundle once, guard every use."""

from repro.obs import telemetry as obs


class DriveProbe:
    def __init__(self) -> None:
        self._obs = obs.get()

    def record(self, name: str, value: float) -> None:
        if self._obs is not None:
            self._obs.metrics.counter(name).inc(value)
