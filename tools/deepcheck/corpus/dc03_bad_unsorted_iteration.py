"""Corpus DC03 bad: filesystem order and set-view algebra reach output."""

import os


def snapshot_names(root: str) -> list:
    names = []
    for name in os.listdir(root):
        names.append(name)
    return names


def merged_keys(a: dict, b: dict) -> list:
    return list(a.keys() | b.keys())
