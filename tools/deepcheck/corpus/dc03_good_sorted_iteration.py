"""Corpus DC03 good: every unordered source is sorted before use."""

import os


def snapshot_names(root: str) -> list:
    return sorted(os.listdir(root))


def merged_keys(a: dict, b: dict) -> list:
    return sorted(a.keys() | b.keys())
