"""Corpus DC05 bad: assert-for-validation and a bare builtin raise."""


def check_capacity(capacity: int) -> int:
    assert capacity > 0, "capacity must be positive"
    if capacity > (1 << 20):
        raise ValueError("capacity too large")
    return capacity
