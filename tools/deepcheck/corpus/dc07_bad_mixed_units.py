"""Corpus DC07 bad: seconds plus milliseconds without a conversion."""


def window_end(start_s: float, duration_ms: float) -> float:
    return start_s + duration_ms
