"""Corpus DC02 bad: global random module and an OS-entropy-seeded Random."""

import random


def jitter(scale: float) -> float:
    return scale * random.uniform(0.0, 1.0)


def make_stream():
    return random.Random()
