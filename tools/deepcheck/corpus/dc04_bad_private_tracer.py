"""Corpus DC04 bad: a hot-path component builds its own telemetry."""

from repro.obs.trace import Tracer


class DriveProbe:
    def __init__(self) -> None:
        self._tracer = Tracer()
