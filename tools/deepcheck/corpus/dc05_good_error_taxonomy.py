"""Corpus DC05 good: validation failures use the repro.errors hierarchy."""

from repro.errors import ConfigurationError


def check_capacity(capacity: int) -> int:
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be positive: {capacity}")
    return capacity
