"""Corpus DC02 good: randomness arrives as a label-forked stream."""


def jitter(rng, scale: float) -> float:
    return scale * rng.uniform(0.0, 1.0)


def make_stream(parent_rng):
    return parent_rng.fork("jitter")
