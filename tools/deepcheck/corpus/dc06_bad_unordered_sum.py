"""Corpus DC06 bad: float accumulation over an unordered collection."""


def total_displacement(samples: list) -> float:
    return sum(set(samples))
