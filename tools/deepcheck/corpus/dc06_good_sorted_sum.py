"""Corpus DC06 good: deduplicate, then sum in sorted order."""


def total_displacement(samples: list) -> float:
    return sum(sorted(set(samples)))
