"""Corpus DC01 bad: reads the wall clock inside simulation code."""

import time


def elapsed_wall_seconds(start: float) -> float:
    return time.time() - start
