"""Corpus DC07 good: operands share one unit suffix."""


def window_end(start_s: float, duration_s: float) -> float:
    return start_s + duration_s
