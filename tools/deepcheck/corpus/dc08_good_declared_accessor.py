"""Corpus DC08 good: flags are consumed through the repro.perf accessors."""

from repro.perf import field_cache_enabled


def use_field_cache() -> bool:
    return field_cache_enabled()
