"""Corpus DC08 bad: a REPRO_* switch read without being declared."""

import os

DEBUG_DUMP = os.environ.get("REPRO_DEBUG_DUMP", "0") == "1"
