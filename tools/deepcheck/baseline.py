"""Checked-in baseline of grandfathered findings.

The baseline lets the gate turn on strict from day one without blocking
on every historical finding at once: known findings are recorded with a
*reason* and matched content-wise (rule, path, stripped source line), so
they survive unrelated edits shifting line numbers but expire the moment
the offending line changes or moves files.

Policy: the baseline is for *justified* findings only — every entry
must carry a reason a reviewer would accept.  New code never gets new
baseline entries; it uses inline suppressions (which live next to the
code) or gets fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from .engine import Finding

_FORMAT_VERSION = 1


def _key(rule: str, path: str, snippet: str) -> Tuple[str, str, str]:
    return (rule, path, " ".join(snippet.split()))


@dataclass
class Baseline:
    """Content-matched set of accepted findings."""

    entries: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(entries=list(data.get("findings", [])))

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered deepcheck findings. Every entry needs a "
                "'reason'. Matched on (rule, path, normalized line), so an "
                "entry expires when its line is edited. Do not add entries "
                "for new code — fix it or use an inline suppression."
            ),
            "findings": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: List[Finding], reason: str = "grandfathered at introduction"
    ) -> "Baseline":
        counts: Counter = Counter()
        order: List[Finding] = []
        for finding in findings:
            key = _key(finding.rule, finding.path, finding.snippet)
            if counts[key] == 0:
                order.append(finding)
            counts[key] += 1
        entries = []
        for finding in order:
            key = _key(finding.rule, finding.path, finding.snippet)
            entry: Dict[str, object] = {
                "rule": finding.rule,
                "path": finding.path,
                "snippet": " ".join(finding.snippet.split()),
                "reason": reason,
            }
            if counts[key] > 1:
                entry["count"] = counts[key]
            entries.append(entry)
        return cls(entries=entries)

    # -- filtering ---------------------------------------------------------

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Partition into (new, baselined) findings plus stale entries.

        A baseline entry absorbs up to ``count`` (default 1) findings with
        the same rule, path, and normalized line content.  Entries that
        absorb nothing are *stale* — the code they excused is gone, and
        they should be deleted.
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = _key(
                str(entry.get("rule", "")),
                str(entry.get("path", "")),
                str(entry.get("snippet", "")),
            )
            budget[key] = budget.get(key, 0) + int(entry.get("count", 1))
        used: Counter = Counter()
        new: List[Finding] = []
        absorbed: List[Finding] = []
        for finding in findings:
            key = _key(finding.rule, finding.path, finding.snippet)
            if used[key] < budget.get(key, 0):
                used[key] += 1
                absorbed.append(finding)
            else:
                new.append(finding)
        stale = []
        for entry in self.entries:
            key = _key(
                str(entry.get("rule", "")),
                str(entry.get("path", "")),
                str(entry.get("snippet", "")),
            )
            if used[key] == 0:
                stale.append(entry)
        return new, absorbed, stale
