"""The deepcheck engine: file walking, suppressions, rule dispatch.

The engine parses each file once, asks every rule whose scope covers the
file's repo-relative path for findings, then filters the result through
inline suppressions and (optionally) the checked-in baseline.

Inline suppressions
-------------------
A finding is suppressed by a comment on the offending line or on the
line directly above it::

    started = time.monotonic()  # deepcheck: ignore[DC01] progress ETA needs wall time

    # deepcheck: ignore[DC03,DC06] input list is pre-sorted by the journal
    total = sum(points)

The reason text after the bracket is mandatory — a bare ``ignore`` is
itself reported (rule ``DC00``), so every waiver carries its
justification in the diff where reviewers can see it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_SUPPRESS_RE = re.compile(
    r"#\s*deepcheck:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(.*)$"
)

#: Rule ID reserved for problems with deepcheck directives themselves.
META_RULE_ID = "DC00"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    snippet: str = ""  # stripped source line, used for baseline matching

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class Suppression:
    """A parsed ``# deepcheck: ignore[...]`` directive."""

    line: int  # line the directive appears on
    rules: Tuple[str, ...]
    reason: str

    def covers(self, finding: Finding) -> bool:
        # A directive silences findings on its own line and on the line
        # below it (comment-above style).
        if finding.line not in (self.line, self.line + 1):
            return False
        return finding.rule in self.rules


@dataclass
class FileContext:
    """Everything a rule may need about the file under analysis."""

    relpath: str
    tree: ast.Module
    lines: Sequence[str]
    env_registry: frozenset  # declared REPRO_* flags (see DC08)

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def parse_suppressions(lines: Sequence[str]) -> Tuple[List[Suppression], List[Finding]]:
    """Extract directives; malformed ones become DC00 findings (path unset)."""
    directives: List[Suppression] = []
    problems: List[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            if "deepcheck:" in text and "ignore" in text:
                problems.append(
                    Finding(
                        rule=META_RULE_ID,
                        path="",
                        line=lineno,
                        col=text.index("#") + 1 if "#" in text else 1,
                        message=(
                            "unparseable deepcheck directive; expected "
                            "'# deepcheck: ignore[DCxx] <reason>'"
                        ),
                        snippet=text.strip(),
                    )
                )
            continue
        rules = tuple(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        reason = match.group(2).strip()
        if not rules or not reason:
            problems.append(
                Finding(
                    rule=META_RULE_ID,
                    path="",
                    line=lineno,
                    col=match.start() + 1,
                    message="suppression needs both rule IDs and a reason: "
                    "'# deepcheck: ignore[DCxx] <why this is safe>'",
                    snippet=text.strip(),
                )
            )
            continue
        directives.append(Suppression(line=lineno, rules=rules, reason=reason))
    return directives, problems


def _load_env_registry(root: Path) -> frozenset:
    """Declared REPRO_* flags: the keys of ``ENV_FLAGS`` in repro.perf.

    Parsed statically so deepcheck never imports the code under
    analysis.  Missing file or registry → empty set (every REPRO_* read
    is then a finding, which is the safe failure mode).
    """
    perf_path = root / "src" / "repro" / "perf.py"
    try:
        tree = ast.parse(perf_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return frozenset()
    names: set = set()
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "ENV_FLAGS" for t in targets
        ):
            continue
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    names.add(key.value)
    return frozenset(names)


@dataclass
class RunResult:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    parse_errors: List[str] = field(default_factory=list)
    files_checked: int = 0


class Engine:
    """Runs a set of rules over a source tree rooted at ``root``."""

    def __init__(
        self,
        root: Path,
        rules: Optional[Sequence[object]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        from .rules import ALL_RULES

        self.root = Path(root)
        chosen = list(rules) if rules is not None else list(ALL_RULES)
        if select:
            wanted = {r.upper() for r in select}
            chosen = [r for r in chosen if r.id in wanted]
        if ignore:
            dropped = {r.upper() for r in ignore}
            chosen = [r for r in chosen if r.id not in dropped]
        self.rules = chosen
        self._env_registry: Optional[frozenset] = None

    # -- helpers -----------------------------------------------------------

    @property
    def env_registry(self) -> frozenset:
        if self._env_registry is None:
            self._env_registry = _load_env_registry(self.root)
        return self._env_registry

    def _iter_files(self, targets: Sequence[str]) -> Iterable[Path]:
        seen = set()
        for target in targets:
            path = (self.root / target) if not Path(target).is_absolute() else Path(target)
            if path.is_file() and path.suffix == ".py":
                candidates = [path]
            elif path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = []
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate

    # -- core --------------------------------------------------------------

    def check_file(self, path: Path) -> Tuple[List[Finding], int, Optional[str]]:
        """Findings, suppressed count, and parse error (if any) for one file."""
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [], 0, f"{path}: unreadable: {exc}"
        try:
            relpath = path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return self._check(source, relpath)

    def check_source(
        self, source: str, relpath: str
    ) -> Tuple[List[Finding], int, Optional[str]]:
        """Analyze in-memory ``source`` as if it lived at ``relpath``."""
        return self._check(source, relpath)

    def _check(
        self, source: str, relpath: str
    ) -> Tuple[List[Finding], int, Optional[str]]:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [], 0, f"{relpath}:{exc.lineno}: syntax error: {exc.msg}"
        lines = source.splitlines()
        ctx = FileContext(
            relpath=relpath,
            tree=tree,
            lines=lines,
            env_registry=self.env_registry,
        )
        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies(relpath):
                raw.extend(rule.check(ctx))
        directives, directive_problems = parse_suppressions(lines)
        for problem in directive_problems:
            raw.append(
                Finding(
                    rule=problem.rule,
                    path=relpath,
                    line=problem.line,
                    col=problem.col,
                    message=problem.message,
                    snippet=problem.snippet,
                )
            )
        kept: List[Finding] = []
        suppressed = 0
        for finding in raw:
            if finding.rule != META_RULE_ID and any(
                d.covers(finding) for d in directives
            ):
                suppressed += 1
                continue
            kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept, suppressed, None

    def run(self, targets: Sequence[str] = ("src",)) -> RunResult:
        result = RunResult()
        for path in self._iter_files(targets):
            findings, suppressed, error = self.check_file(path)
            result.files_checked += 1
            result.suppressed += suppressed
            if error is not None:
                result.parse_errors.append(error)
            result.findings.extend(findings)
        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result


def check_source(
    source: str,
    relpath: str = "src/repro/core/snippet.py",
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """One-shot convenience: findings for ``source`` at a virtual path.

    The default path puts the snippet in the strictest scope (sim core)
    so every rule applies — this is what the self-test corpus and the
    unit tests use.
    """
    engine = Engine(root=root if root is not None else Path("."), select=select)
    if root is None:
        engine._env_registry = frozenset()  # corpus runs: no registry on disk
    findings, _suppressed, error = engine.check_source(source, relpath)
    if error is not None:
        raise SyntaxError(error)
    return findings
