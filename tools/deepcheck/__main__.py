"""Entry point so ``python tools/deepcheck`` works from the repo root.

When executed as a directory (``python tools/deepcheck``), Python puts
the *package directory* on ``sys.path`` instead of its parent, so the
package is not importable by name; fix the path up before importing.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):  # executed as `python tools/deepcheck`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from deepcheck.cli import main
else:  # executed as `python -m deepcheck`
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
