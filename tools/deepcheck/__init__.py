"""deepcheck — AST-based invariant linter for the Deep Note reproduction.

Generic linters catch undefined names; they cannot know that this
codebase promises byte-identical Figure 2 CSVs at any ``--workers``
count, bit-identical output with telemetry off, and kill-anywhere
``--resume``.  Those claims rest on coding invariants (virtual clock
only, label-forked RNG, sorted merges, guarded telemetry) that one
careless ``time.time()`` silently breaks — the way one resonant tone
silently breaks a drive.  deepcheck turns each invariant into a
machine-checked rule with an ID, a rationale, and a precise scope.

Usage (from the repo root)::

    python tools/deepcheck                 # gate src/ against the baseline
    python tools/deepcheck --list-rules    # the rule catalog
    python tools/deepcheck --self-test     # run the good/bad corpus

See ``docs/STATIC_ANALYSIS.md`` for the full rule catalog and the
suppression / baseline workflow.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .baseline import Baseline  # noqa: E402,F401
from .engine import Engine, Finding, check_source  # noqa: E402,F401
from .rules import ALL_RULES, rule_catalog  # noqa: E402,F401

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Engine",
    "Finding",
    "check_source",
    "rule_catalog",
    "__version__",
]
