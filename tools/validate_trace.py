"""Validate telemetry artifacts: traces, series JSONL, dashboards.

Dispatches on file extension so CI can gate every exporter with one
tool:

* ``*.json`` — Chrome ``trace_event`` documents from ``--trace``:
  top level is an object with a ``traceEvents`` list; every event
  carries ``ph``/``pid``/``tid``/``name`` with the right types and one
  of the emitted phases (``M`` metadata, ``X`` complete, ``i``
  instant); complete events have numeric non-negative ``ts``/``dur``
  and a ``cat``; instants have numeric ``ts`` and a valid scope ``s``;
  every ``tid`` referenced by a span or instant has a matching
  ``thread_name`` metadata event.
* ``*.jsonl`` — series dumps from ``--series-out``: every line is an
  object with ``series``/``kind``/``window``/``t_s``/``interval_s``
  and kind-appropriate aggregates, and within each series the window
  indexes (hence timestamps) are strictly increasing.
* ``*.html`` — dashboards from ``--dashboard-out``: the
  ``dashboard-data`` JSON island parses, and its series points carry
  monotonically increasing window timestamps.

Usage:
    python tools/validate_trace.py ARTIFACT [ARTIFACT2 ...]

Exits non-zero on the first malformed file, printing every violation
found in it (capped at 20 lines).
"""

from __future__ import annotations

import json
import numbers
import pathlib
import sys

_PHASES = {"M", "X", "i"}
_INSTANT_SCOPES = {"t", "p", "g"}
_MAX_ERRORS = 20


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate_trace(data) -> list:
    """All structural violations in one parsed trace document."""
    errors = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]

    named_tids = set()
    used_tids = set()
    counts = {"M": 0, "X": 0, "i": 0}
    for n, event in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: ph {ph!r} not in {sorted(_PHASES)}")
            continue
        counts[ph] += 1
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: pid must be an integer")
        tid = event.get("tid")
        if not isinstance(tid, int):
            errors.append(f"{where}: tid must be an integer")
            tid = None
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: name must be a non-empty string")

        if ph == "M":
            if event.get("name") != "thread_name":
                errors.append(f"{where}: metadata event must be 'thread_name'")
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: thread_name needs args.name (string)")
            elif tid is not None:
                named_tids.add(tid)
            continue

        if tid is not None:
            used_tids.add(tid)
        if not _is_number(event.get("ts")) or event["ts"] < 0:
            errors.append(f"{where}: ts must be a non-negative number (microseconds)")
        if ph == "X":
            if not _is_number(event.get("dur")) or event["dur"] < 0:
                errors.append(f"{where}: dur must be a non-negative number")
            if not isinstance(event.get("cat"), str):
                errors.append(f"{where}: complete event needs a 'cat' string")
        elif ph == "i":
            if event.get("s") not in _INSTANT_SCOPES:
                errors.append(
                    f"{where}: instant scope {event.get('s')!r} not in"
                    f" {sorted(_INSTANT_SCOPES)}"
                )

    for tid in sorted(used_tids - named_tids):
        errors.append(f"tid {tid} has spans/instants but no thread_name metadata")
    if counts["M"] == 0 and (counts["X"] or counts["i"]):
        errors.append("no thread_name metadata events at all")
    return errors


_VALUE_FIELDS = ("count", "sum", "min", "max", "last")
_HIST_FIELDS = ("count", "sum", "counts")


def validate_series_lines(lines) -> list:
    """All structural violations in a ``--series-out`` JSONL dump."""
    errors = []
    last_window = {}
    for n, line in enumerate(lines):
        where = f"line {n + 1}"
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(f"{where}: invalid JSON: {exc}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: record must be an object")
            continue
        name = record.get("series")
        kind = record.get("kind")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: 'series' must be a non-empty string")
            continue
        if kind not in ("value", "hist"):
            errors.append(f"{where}: kind {kind!r} not in ['value', 'hist']")
            continue
        window = record.get("window")
        if not isinstance(window, int):
            errors.append(f"{where}: 'window' must be an integer index")
            continue
        interval = record.get("interval_s")
        if not _is_number(interval) or interval <= 0:
            errors.append(f"{where}: 'interval_s' must be a positive number")
        t_s = record.get("t_s")
        if not _is_number(t_s):
            errors.append(f"{where}: 't_s' must be a number")
        elif _is_number(interval) and interval > 0 and abs(t_s - window * interval) > 1e-9:
            errors.append(
                f"{where}: t_s {t_s} != window*interval {window * interval}"
            )
        fields = _VALUE_FIELDS if kind == "value" else _HIST_FIELDS
        for fieldname in fields:
            if fieldname not in record:
                errors.append(f"{where}: {kind} record missing {fieldname!r}")
        if kind == "hist" and not isinstance(record.get("counts"), list):
            errors.append(f"{where}: 'counts' must be a list of bucket counts")
        previous = last_window.get(name)
        if previous is not None and window <= previous:
            errors.append(
                f"{where}: series {name!r} window {window} not after {previous} "
                f"(window timestamps must be strictly increasing)"
            )
        last_window[name] = window
    return errors


def validate_dashboard(text: str) -> list:
    """All structural violations in a ``--dashboard-out`` HTML report."""
    errors = []
    marker = 'id="dashboard-data">'
    start = text.find(marker)
    if start < 0:
        return ["no dashboard-data JSON island found"]
    end = text.find("</script>", start)
    if end < 0:
        return ["dashboard-data island is not terminated"]
    island = text[start + len(marker):end]
    try:
        data = json.loads(island)
    except ValueError as exc:
        return [f"dashboard-data island is not valid JSON: {exc}"]
    if not isinstance(data, dict):
        return ["dashboard-data island must be a JSON object"]
    series = data.get("series")
    if not isinstance(series, list):
        errors.append("island missing 'series' list")
        series = []
    for entry in series:
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            errors.append("series entry missing a string 'name'")
            continue
        points = entry.get("points")
        if not isinstance(points, list):
            errors.append(f"series {entry['name']!r}: missing 'points' list")
            continue
        last_t = None
        for point in points:
            if (
                not isinstance(point, list)
                or len(point) != 2
                or not _is_number(point[0])
                or not _is_number(point[1])
            ):
                errors.append(f"series {entry['name']!r}: malformed point {point!r}")
                break
            if last_t is not None and point[0] <= last_t:
                errors.append(
                    f"series {entry['name']!r}: window timestamps not "
                    f"strictly increasing at t={point[0]}"
                )
                break
            last_t = point[0]
    for window in data.get("attack_windows") or []:
        if not isinstance(window, dict) or not _is_number(window.get("start_s")):
            errors.append(f"malformed attack window {window!r}")
    return errors


def _report(path: pathlib.Path, errors: list, ok_line: str) -> int:
    if errors:
        for line in errors[:_MAX_ERRORS]:
            print(f"{path}: {line}", file=sys.stderr)
        if len(errors) > _MAX_ERRORS:
            print(
                f"{path}: ... and {len(errors) - _MAX_ERRORS} more", file=sys.stderr
            )
        return 1
    print(f"{path}: OK ({ok_line})")
    return 0


def _validate_file(path: pathlib.Path) -> int:
    suffix = path.suffix.lower()
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1

    if suffix == ".jsonl":
        lines = text.splitlines()
        errors = validate_series_lines(lines)
        if errors:
            return _report(path, errors, "")
        series = {json.loads(line)["series"] for line in lines if line.strip()}
        windows = sum(1 for line in lines if line.strip())
        return _report(path, [], f"{len(series)} series, {windows} windows")
    if suffix in (".html", ".htm"):
        return _report(path, validate_dashboard(text), "dashboard island")

    try:
        data = json.loads(text)
    except ValueError as exc:
        print(f"{path}: invalid JSON: {exc}", file=sys.stderr)
        return 1
    errors = validate_trace(data)
    if errors:
        return _report(path, errors, "")
    events = data["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    instants = sum(1 for e in events if e.get("ph") == "i")
    tracks = sum(1 for e in events if e.get("ph") == "M")
    return _report(
        path, [], f"{tracks} tracks, {spans} spans, {instants} instants"
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(
            "usage: python tools/validate_trace.py ARTIFACT "
            "(.json trace, .jsonl series, .html dashboard) ...",
            file=sys.stderr,
        )
        return 2
    for name in argv:
        status = _validate_file(pathlib.Path(name))
        if status:
            return status
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
