"""Validate a Chrome ``trace_event`` JSON file produced by ``--trace``.

Checks the structural contract that Perfetto / ``chrome://tracing``
relies on, so CI can gate the exporter without loading a UI:

* top level is an object with a ``traceEvents`` list;
* every event carries ``ph``/``pid``/``tid``/``name`` with the right
  types, and ``ph`` is one of the phases the exporter emits
  (``M`` metadata, ``X`` complete, ``i`` instant);
* complete events have numeric non-negative ``ts``/``dur`` and a
  ``cat``; instants have numeric ``ts`` and a valid scope ``s``;
* every ``tid`` referenced by a span or instant has a matching
  ``thread_name`` metadata event (the track registry).

Usage:
    python tools/validate_trace.py TRACE.json [TRACE2.json ...]

Exits non-zero on the first malformed file, printing every violation
found in it (capped at 20 lines).
"""

from __future__ import annotations

import json
import numbers
import pathlib
import sys

_PHASES = {"M", "X", "i"}
_INSTANT_SCOPES = {"t", "p", "g"}
_MAX_ERRORS = 20


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate_trace(data) -> list:
    """All structural violations in one parsed trace document."""
    errors = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]

    named_tids = set()
    used_tids = set()
    counts = {"M": 0, "X": 0, "i": 0}
    for n, event in enumerate(events):
        where = f"traceEvents[{n}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: ph {ph!r} not in {sorted(_PHASES)}")
            continue
        counts[ph] += 1
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: pid must be an integer")
        tid = event.get("tid")
        if not isinstance(tid, int):
            errors.append(f"{where}: tid must be an integer")
            tid = None
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: name must be a non-empty string")

        if ph == "M":
            if event.get("name") != "thread_name":
                errors.append(f"{where}: metadata event must be 'thread_name'")
            args = event.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: thread_name needs args.name (string)")
            elif tid is not None:
                named_tids.add(tid)
            continue

        if tid is not None:
            used_tids.add(tid)
        if not _is_number(event.get("ts")) or event["ts"] < 0:
            errors.append(f"{where}: ts must be a non-negative number (microseconds)")
        if ph == "X":
            if not _is_number(event.get("dur")) or event["dur"] < 0:
                errors.append(f"{where}: dur must be a non-negative number")
            if not isinstance(event.get("cat"), str):
                errors.append(f"{where}: complete event needs a 'cat' string")
        elif ph == "i":
            if event.get("s") not in _INSTANT_SCOPES:
                errors.append(
                    f"{where}: instant scope {event.get('s')!r} not in"
                    f" {sorted(_INSTANT_SCOPES)}"
                )

    for tid in sorted(used_tids - named_tids):
        errors.append(f"tid {tid} has spans/instants but no thread_name metadata")
    if counts["M"] == 0 and (counts["X"] or counts["i"]):
        errors.append("no thread_name metadata events at all")
    return errors


def _validate_file(path: pathlib.Path) -> int:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable or invalid JSON: {exc}", file=sys.stderr)
        return 1
    errors = validate_trace(data)
    if errors:
        for line in errors[:_MAX_ERRORS]:
            print(f"{path}: {line}", file=sys.stderr)
        if len(errors) > _MAX_ERRORS:
            print(
                f"{path}: ... and {len(errors) - _MAX_ERRORS} more", file=sys.stderr
            )
        return 1
    events = data["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    instants = sum(1 for e in events if e.get("ph") == "i")
    tracks = sum(1 for e in events if e.get("ph") == "M")
    print(f"{path}: OK ({tracks} tracks, {spans} spans, {instants} instants)")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: python tools/validate_trace.py TRACE.json ...", file=sys.stderr)
        return 2
    for name in argv:
        status = _validate_file(pathlib.Path(name))
        if status:
            return status
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
