#!/usr/bin/env python3
"""Regenerate every artefact in results/ plus the full report.

CI entry point: after this script, results/ contains the rendered
figure, all tables, the ablations, the CSV series, and REPORT.md — all
seeded, so the diff against the committed artefacts shows real
behavioural change only.

Run:  python tools/make_results.py [--full]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="full-fidelity run")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    RESULTS.mkdir(exist_ok=True)
    fio_runtime = 2.0 if args.full else 0.5
    duration = 1.0 if args.full else 0.5

    from repro.analysis.report import ReportOptions, build_report
    from repro.experiments.ablations import (
        run_defense_ablation,
        run_drive_type_ablation,
        run_material_ablation,
        run_source_level_ablation,
        run_water_conditions_ablation,
    )
    from repro.experiments.figure2 import run_figure2
    from repro.experiments.objectives import run_objective_comparison
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2
    from repro.experiments.table3 import run_table3

    def save(name: str, text: str) -> None:
        path = RESULTS / name
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {path}")

    figure2 = run_figure2(fio_runtime_s=fio_runtime, seed=args.seed)
    save("figure2.txt", figure2.render())
    save("figure2_write.csv", figure2.to_csv("write"))
    save("figure2_read.csv", figure2.to_csv("read"))

    save("table1.txt", run_table1(fio_runtime_s=fio_runtime, seed=args.seed).render())
    save("table2.txt", run_table2(duration_s=duration, seed=args.seed).render())
    save("table3.txt", run_table3(deadline_s=200.0).render())

    save("ablation_material.txt", run_material_ablation().render())
    save("ablation_source_level.txt", run_source_level_ablation().render())
    save("ablation_water.txt", run_water_conditions_ablation().render())
    save("ablation_defense.txt", run_defense_ablation().render())
    save("ablation_drive_type.txt", run_drive_type_ablation().render())

    *_, objective_table = run_objective_comparison(total_s=260.0, seed=args.seed)
    save("objectives.txt", objective_table.render())

    save(
        "REPORT.md",
        build_report(ReportOptions(quick=not args.full, seed=args.seed)),
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
