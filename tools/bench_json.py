"""Machine-readable performance trajectory: writes BENCH_PR10.json.

Times the hot-path I/O engine against three baselines:

* the *gated* baseline — the same tree with the ``REPRO_SERVO_CACHE``,
  ``REPRO_IO_FAST_PATH`` and ``REPRO_VEC_PHYSICS`` flags off
  (``repro.perf.perf_baseline``), which isolates all gated engines; and
* the *recorded seed* reference — the pre-optimization commit, measured
  once with the same protocol and recorded below, which also credits
  the ungated structural wins (hoisted FIO loop, bisected zone lookup,
  shared per-family geometry, page-granular sector store); and
* the *recorded PR3* reference — the BENCH_PR3.json recording of the
  scalar hot-path engine, which the vectorized physics kernel must
  beat by ``VEC_SPEEDUP_TARGET`` on the full protocol.

The cold Figure 2 sweep is the headline number; the sweep CSVs are
hashed so every run re-proves bit-identity against every baseline.

The ``telemetry`` section carries the PR4 gate: with no telemetry
bundle installed the sweep must stay bit-identical to the BENCH_PR2
recording and within its wall-time envelope, and a fully traced sweep
must still produce the identical CSV (tracing observes, never
perturbs).

The ``vecphys`` section carries the PR6 gate: the sweep with the
vectorized kernel (the default) against the same sweep with only the
vectorized kernel disabled (servo cache and fast path stay on — the
PR3 configuration re-measured on this host), bit-identical CSVs, and
a >= 3x speedup over the recorded BENCH_PR3 wall in full mode.

The ``fleetsim`` section is the PR10 gate: a fleet-scale attack
campaign (racks x towers x bays drives, attack windows + open-loop
service + health monitors, all events on one
:class:`repro.sim.EventScheduler`) must cover >= 1000 drives and hold
the events/s floor in full sizing, and the single-scheduler per-rack
outcomes must always be byte-identical to the rack-sharded run (the
``--workers`` discipline).

The ``fleet`` section is the PR7 gate: a 5-bay
:class:`~repro.core.fleet.DriveRack` frequency sweep through the
batched rack kernels (one shared source/water/wall stage per
frequency, broadcast across bays) against the per-bay scalar loop,
byte-identical surfaces, and a >= 5x speedup in full mode.  A fresh
rack is built per repeat — outside the timed region — so neither leg
benefits from the servo memo caches, and the acoustic-field cache is
disabled during the scalar leg so both legs recompute from first
principles.

Usage:
    python tools/bench_json.py [--quick] [--only SECTION] [--out BENCH_PR10.json]

``--quick`` shrinks the sweep and repeat counts for CI smoke runs; the
recorded-reference comparisons (seed, PR2 and PR3) and the fleet
speedup gate only apply to the full protocol, so quick output omits
them (bit-identity gates always apply).  ``--only`` restricts the run
to one section (sections that compare against the Figure 2 sweep pull
it in automatically).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import perf  # noqa: E402
from repro.core.fleet import DriveRack  # noqa: E402
from repro.core.scenario import Scenario  # noqa: E402
from repro.experiments.figure2 import run_figure2  # noqa: E402
from repro.hdd.drive import HardDiskDrive  # noqa: E402
from repro.hdd.sector_store import SectorStore  # noqa: E402
from repro.hdd.servo import OpKind, ServoSystem, VibrationInput  # noqa: E402
from repro.rng import make_rng  # noqa: E402
from repro.sim.clock import VirtualClock  # noqa: E402

#: The recorded pre-optimization reference: commit bd2caf7 (the seed of
#: this PR), measured on the development host with the exact full-mode
#: protocol below (best of 3 cold runs).  The CSV digest is
#: platform-independent (IEEE-754 arithmetic end to end), so any run
#: can re-verify bit-identity against the seed; the wall time is only
#: meaningful relative to `sweep.optimized_wall_s` from the same host.
SEED_REFERENCE = {
    "commit": "bd2caf7",
    "wall_s": 0.206,
    "csv_sha256": "f3c748ef335267d39601ba1114796e7ca581ab446dd71c04878f26ca1f418913",
}

#: The PR2 recording this PR's telemetry layer must not regress: same
#: host, same full-mode protocol, telemetry did not exist yet.  Used as
#: the fallback when BENCH_PR2.json is not sitting next to the repo
#: root (the checked-in copy normally is, and takes precedence).
PR2_REFERENCE = {
    "commit": "80ec17f",
    "wall_s": 0.0657,
    "csv_sha256": "f3c748ef335267d39601ba1114796e7ca581ab446dd71c04878f26ca1f418913",
}

#: Telemetry-off wall-time envelope vs the PR2 recording (acceptance
#: gate: <= 2% overhead with the observability layer compiled in but
#: disabled).
PR2_OVERHEAD_BUDGET = 0.02


#: The PR3 recording the vectorized physics kernel is gated against:
#: same host, same full-mode protocol, scalar hot-path engine (servo
#: cache + static fast path, no vectorization).  Fallback when
#: BENCH_PR3.json is not sitting next to the repo root (the checked-in
#: copy normally is, and takes precedence).
PR3_REFERENCE = {
    "commit": "e3e57ab",
    "wall_s": 0.0616,
    "csv_sha256": "f3c748ef335267d39601ba1114796e7ca581ab446dd71c04878f26ca1f418913",
}

#: Minimum full-protocol speedup of the vectorized sweep over the
#: recorded PR3 wall (acceptance gate: >= 3x).
VEC_SPEEDUP_TARGET = 3.0

#: The traced-sweep overhead the PR6 recording measured (traced wall
#: over telemetry-off wall, minus one).  Fallback for the trend row
#: when BENCH_PR6.json is not sitting next to the repo root.
PR6_TRACED_OVERHEAD = 11.97

#: Minimum full-protocol speedup of the batched 5-bay rack sweep over
#: the per-bay scalar loop (acceptance gate: >= 5x).
FLEET_SPEEDUP_TARGET = 5.0

#: Full-protocol fleet-sim campaign must cover a real datacenter slice
#: (acceptance gate: >= 1000 drives on one scheduler).
FLEETSIM_DRIVES_TARGET = 1000

#: Minimum full-protocol rack-event throughput of the fleet campaign
#: (rack-level events through the scheduler per wall second; the full
#: sizing measures ~1000/s on the reference host, gate at a wide
#: cross-machine margin).
FLEETSIM_EVENTS_PER_S_TARGET = 100.0


def _load_recorded_reference(filename: str, fallback: dict) -> dict:
    path = pathlib.Path(__file__).resolve().parent.parent / filename
    try:
        sweep = json.loads(path.read_text())["sweep"]
        return {
            "commit": fallback["commit"],
            "wall_s": sweep["optimized_wall_s"],
            "csv_sha256": sweep["optimized_csv_sha256"],
        }
    except (OSError, ValueError, KeyError):
        return dict(fallback)


def _load_pr2_reference() -> dict:
    return _load_recorded_reference("BENCH_PR2.json", PR2_REFERENCE)


def _load_pr3_reference() -> dict:
    return _load_recorded_reference("BENCH_PR3.json", PR3_REFERENCE)


def _load_pr6_traced_overhead() -> float:
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
    try:
        return float(json.loads(path.read_text())["telemetry"]["traced_overhead"])
    except (OSError, ValueError, KeyError, TypeError):
        return PR6_TRACED_OVERHEAD


FULL_GRID = [float(f) for f in range(100, 2100, 100)]
FULL_RUNTIME_S = 0.4
FULL_REPEATS = 3
QUICK_GRID = [float(f) for f in range(200, 2200, 400)]
QUICK_RUNTIME_S = 0.2
QUICK_REPEATS = 1
SWEEP_SEED = 7

FLEET_BAYS = 5
FLEET_FULL_GRID = [float(f) for f in range(100, 4001, 10)]
FLEET_QUICK_GRID = [float(f) for f in range(200, 4001, 200)]


def _sweep_once(grid, runtime_s):
    result = run_figure2(
        frequencies_hz=grid,
        scenarios=[Scenario.scenario_2()],
        fio_runtime_s=runtime_s,
        seed=SWEEP_SEED,
    )
    return result.to_csv("write") + result.to_csv("read")


def _time_sweep(grid, runtime_s, repeats):
    """Best-of-N cold sweep wall time plus the CSV digest."""
    best = None
    digest = ""
    for _ in range(repeats):
        t0 = time.perf_counter()
        csv = _sweep_once(grid, runtime_s)
        wall = time.perf_counter() - t0
        digest = hashlib.sha256(csv.encode()).hexdigest()
        best = wall if best is None or wall < best else best
    return best, digest


def bench_sweep(quick: bool) -> dict:
    grid = QUICK_GRID if quick else FULL_GRID
    runtime_s = QUICK_RUNTIME_S if quick else FULL_RUNTIME_S
    repeats = QUICK_REPEATS if quick else FULL_REPEATS

    _sweep_once(grid, runtime_s)  # warm imports and the locate cache
    optimized_wall, optimized_sha = _time_sweep(grid, runtime_s, repeats)
    with perf.perf_baseline():
        baseline_wall, baseline_sha = _time_sweep(grid, runtime_s, repeats)

    section = {
        "grid_hz": [grid[0], grid[-1], grid[1] - grid[0]],
        "scenario": Scenario.scenario_2().name,
        "fio_runtime_s": runtime_s,
        "seed": SWEEP_SEED,
        "repeats": repeats,
        "optimized_wall_s": round(optimized_wall, 4),
        "gated_baseline_wall_s": round(baseline_wall, 4),
        "speedup_vs_gated_baseline": round(baseline_wall / optimized_wall, 2),
        "optimized_csv_sha256": optimized_sha,
        "gated_baseline_csv_sha256": baseline_sha,
        "bit_identical_to_gated_baseline": optimized_sha == baseline_sha,
    }
    if not quick:
        section["seed_reference"] = dict(
            SEED_REFERENCE,
            bit_identical_to_seed=optimized_sha == SEED_REFERENCE["csv_sha256"],
            speedup_vs_seed=round(SEED_REFERENCE["wall_s"] / optimized_wall, 2),
        )
    return section


def bench_telemetry(quick: bool, sweep_section: dict) -> dict:
    """Telemetry-off and fully-traced sweeps against the PR2 recording.

    The telemetry-off wall is the ``sweep`` section's measurement (no
    bundle was installed there, so the instrumentation guards all took
    their ``None`` branch).  The traced run installs a real tracer +
    metrics registry for the identical protocol; its CSV must match
    bit-for-bit because telemetry only observes the virtual clock.
    """
    from repro import obs

    grid = QUICK_GRID if quick else FULL_GRID
    runtime_s = QUICK_RUNTIME_S if quick else FULL_RUNTIME_S
    repeats = QUICK_REPEATS if quick else FULL_REPEATS

    traced_wall = None
    traced_sha = ""
    spans = events = series = 0
    for _ in range(repeats):
        # One fresh bundle per repeat so each timed run pays the same
        # (empty-buffer) recording cost.
        with obs.session(obs.Telemetry(tracer=obs.Tracer())) as tel:
            t0 = time.perf_counter()
            csv = _sweep_once(grid, runtime_s)
            wall = time.perf_counter() - t0
        traced_sha = hashlib.sha256(csv.encode()).hexdigest()
        traced_wall = wall if traced_wall is None or wall < traced_wall else traced_wall
        spans, events = len(tel.tracer.spans), len(tel.tracer.events)
        series = len(tel.metrics)

    off_wall = sweep_section["optimized_wall_s"]
    off_sha = sweep_section["optimized_csv_sha256"]
    section = {
        "telemetry_off_wall_s": off_wall,
        "traced_wall_s": round(traced_wall, 4),
        "traced_overhead": round(traced_wall / off_wall - 1.0, 3),
        "traced_csv_sha256": traced_sha,
        "traced_bit_identical": traced_sha == off_sha,
        "traced_spans": spans,
        "traced_instants": events,
        "traced_metric_series": series,
    }
    # Trend row for the tuple-backed tracer: the PR6 recording measured
    # the SpanRecord-per-emit tracer at ~12x overhead on a fully traced
    # sweep; this run's number sits next to it so the trajectory stays
    # machine-readable.
    previous_overhead = _load_pr6_traced_overhead()
    section["traced_overhead_trend"] = {
        "pr6_traced_overhead": previous_overhead,
        "traced_overhead": section["traced_overhead"],
        "improved": section["traced_overhead"] < previous_overhead,
    }
    if not quick:
        reference = _load_pr2_reference()
        section["pr2_reference"] = dict(
            reference,
            bit_identical_to_pr2=off_sha == reference["csv_sha256"],
            telemetry_off_overhead_vs_pr2=round(
                off_wall / reference["wall_s"] - 1.0, 4
            ),
            within_overhead_budget=off_wall
            <= reference["wall_s"] * (1.0 + PR2_OVERHEAD_BUDGET),
            overhead_budget=PR2_OVERHEAD_BUDGET,
        )
    # Drop the retained trace buffers before the micro section: tens of
    # thousands of surviving span records otherwise leave the collector
    # running full generations inside the timed loops.
    del tel, csv
    gc.collect()
    return section


def bench_vecphys(quick: bool, sweep_section: dict) -> dict:
    """Vectorized sweep against the scalar hot path and the PR3 recording.

    The vectorized wall is the ``sweep`` section's measurement (the
    ``REPRO_VEC_PHYSICS`` flag defaults on, so the optimized run there
    used the batched pool payloads and the closed-form FIO evaluator).
    The scalar-path run disables only the vectorized kernel — servo
    cache and static fast path stay on — which reproduces the PR3
    configuration on this host for an apples-to-apples speedup.
    """
    grid = QUICK_GRID if quick else FULL_GRID
    runtime_s = QUICK_RUNTIME_S if quick else FULL_RUNTIME_S
    repeats = QUICK_REPEATS if quick else FULL_REPEATS

    previous = perf.set_vec_physics_enabled(False)
    try:
        scalar_wall, scalar_sha = _time_sweep(grid, runtime_s, repeats)
    finally:
        perf.set_vec_physics_enabled(previous)

    vec_wall = sweep_section["optimized_wall_s"]
    vec_sha = sweep_section["optimized_csv_sha256"]
    section = {
        "vectorized_wall_s": vec_wall,
        "scalar_path_wall_s": round(scalar_wall, 4),
        "speedup_vs_scalar_path": round(scalar_wall / vec_wall, 2),
        "vectorized_csv_sha256": vec_sha,
        "scalar_path_csv_sha256": scalar_sha,
        "bit_identical_to_scalar_path": vec_sha == scalar_sha,
    }
    if not quick:
        reference = _load_pr3_reference()
        section["pr3_reference"] = dict(
            reference,
            bit_identical_to_pr3=vec_sha == reference["csv_sha256"],
            speedup_vs_pr3=round(reference["wall_s"] / vec_wall, 2),
            speedup_target=VEC_SPEEDUP_TARGET,
            meets_speedup_target=reference["wall_s"] / vec_wall
            >= VEC_SPEEDUP_TARGET,
        )
    return section


def _fleet_sweep_once(grid) -> "tuple[float, str]":
    """One timed rack sweep on a fresh rack; (wall, surface digest).

    The rack is constructed outside the timed region so neither leg is
    billed for drive/servo setup — and, more importantly, so neither
    leg can reuse the per-servo success-probability memo warmed by the
    previous repeat: every timed call recomputes the full surface.
    """
    rack = DriveRack(bays=FLEET_BAYS)
    t0 = time.perf_counter()
    surface = rack.sweep_surface(grid)
    wall = time.perf_counter() - t0
    blob = json.dumps(surface, sort_keys=True)
    return wall, hashlib.sha256(blob.encode()).hexdigest()


def _time_fleet_sweep(grid, repeats) -> "tuple[float, str]":
    best = None
    digest = ""
    for _ in range(repeats):
        wall, digest = _fleet_sweep_once(grid)
        best = wall if best is None or wall < best else best
    return best, digest


def bench_fleet(quick: bool) -> dict:
    """Batched 5-bay rack sweep against the per-bay scalar loop.

    The batched leg runs with the default flags (one ``fleet_surface``
    call evaluates the whole frequency x bay surface, sharing the
    source/water/wall stage and the servo stage per frequency).  The
    scalar leg disables the vectorized kernels *and* the acoustic-field
    cache, so it pays the full per-(frequency, bay) physics chain the
    pre-fleet code paid.  The surfaces are serialized with sorted keys
    and hashed: the batched kernel must be byte-identical, not merely
    close.
    """
    grid = FLEET_QUICK_GRID if quick else FLEET_FULL_GRID
    repeats = QUICK_REPEATS if quick else FULL_REPEATS

    _fleet_sweep_once(grid[:4])  # warm imports and the numpy kernels
    batched_wall, batched_sha = _time_fleet_sweep(grid, repeats)

    previous_vec = perf.set_vec_physics_enabled(False)
    previous_cache = perf.set_field_cache_enabled(False)
    try:
        scalar_wall, scalar_sha = _time_fleet_sweep(grid, repeats)
    finally:
        perf.set_vec_physics_enabled(previous_vec)
        perf.set_field_cache_enabled(previous_cache)

    section = {
        "bays": FLEET_BAYS,
        "grid_hz": [grid[0], grid[-1], grid[1] - grid[0]],
        "grid_points": len(grid),
        "repeats": repeats,
        "batched_wall_s": round(batched_wall, 4),
        "scalar_path_wall_s": round(scalar_wall, 4),
        "speedup_vs_scalar_path": round(scalar_wall / batched_wall, 2),
        "batched_surface_sha256": batched_sha,
        "scalar_path_surface_sha256": scalar_sha,
        "bit_identical_to_scalar_path": batched_sha == scalar_sha,
        "speedup_target": FLEET_SPEEDUP_TARGET,
    }
    if not quick:
        section["meets_speedup_target"] = (
            scalar_wall / batched_wall >= FLEET_SPEEDUP_TARGET
        )
    return section


def bench_fleetsim(quick: bool) -> dict:
    """Fleet-scale discrete-event campaign: events/s and shard identity.

    The PR10 gate: a multi-rack attack campaign (racks x towers x bays
    drives, attack window + open-loop service + health monitors, all as
    events on one :class:`repro.sim.EventScheduler`) must simulate the
    full fleet — 1000 drives in full sizing — and the per-rack outcomes
    of the single-scheduler run must be byte-identical to simulating
    each rack on its own scheduler shard (the ``--workers`` discipline).
    ``events_per_s`` is rack-level events through the scheduler per
    wall-clock second, construction excluded.
    """
    from repro.core.fleet import AttackWindow, FleetSim, FleetSpec

    spec = FleetSpec(
        racks=2 if quick else 4,
        towers_per_rack=5 if quick else 50,
        bays=5,
        duration_s=10.0 if quick else 30.0,
        request_rate_hz=50.0 if quick else 100.0,
        rebuild_s=5.0,
        seed=10,
        attacks=(
            AttackWindow(
                start_s=2.0,
                duration_s=4.0 if quick else 10.0,
                frequency_hz=650.0,
                source_level_db=139.0,
                distance_m=0.05,
            ),
        ),
    )
    sim = FleetSim(spec)
    t0 = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - t0
    events = sim.scheduler.fired

    whole = [outcome.to_payload() for outcome in result.outcomes]
    sharded = [
        FleetSim(spec, rack_indices=(index,)).run().outcomes[0].to_payload()
        for index in range(spec.racks)
    ]
    digest = hashlib.sha256(
        json.dumps(whole, sort_keys=True).encode()
    ).hexdigest()

    section = {
        "racks": spec.racks,
        "towers_per_rack": spec.towers_per_rack,
        "bays": spec.bays,
        "duration_s": spec.duration_s,
        "drives_simulated": result.drives,
        "events_fired": events,
        "host_ops": result.ops,
        "availability": round(result.availability(), 6),
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall, 1),
        "outcomes_sha256": digest,
        "shard_identical": whole == sharded,
        "drives_target": FLEETSIM_DRIVES_TARGET,
        "events_per_s_target": FLEETSIM_EVENTS_PER_S_TARGET,
    }
    if not quick:
        section["meets_drives_target"] = (
            result.drives >= FLEETSIM_DRIVES_TARGET
        )
        section["meets_events_per_s_target"] = (
            events / wall >= FLEETSIM_EVENTS_PER_S_TARGET
        )
    return section


def _drive_write_rate(ops: int) -> float:
    drive = HardDiskDrive(clock=VirtualClock(), rng=make_rng(1), store_data=False)
    t0 = time.perf_counter()
    for i in range(ops):
        drive.write((i % 10_000) * 8, 8)
    return ops / (time.perf_counter() - t0)


def _servo_eval_rate(evals: int) -> float:
    servo = ServoSystem()
    inputs = [
        VibrationInput(frequency_hz=float(f), displacement_m=1e-8)
        for f in range(100, 2100, 100)
    ]
    t0 = time.perf_counter()
    done = 0
    while done < evals:
        for vib in inputs:
            servo.success_probability(OpKind.WRITE, vib)
        done += len(inputs)
    return done / (time.perf_counter() - t0)


def _sector_store_rates(nbytes: int) -> dict:
    store = SectorStore()
    block = b"\xa5" * 4096
    blocks = nbytes // len(block)
    t0 = time.perf_counter()
    for i in range(blocks):
        store.write(i * 8, block)
    write_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(blocks):
        store.read(i * 8, 8)
    read_s = time.perf_counter() - t0
    return {
        "write_mb_per_s": round(nbytes / 1e6 / write_s, 1),
        "read_mb_per_s": round(nbytes / 1e6 / read_s, 1),
    }


def bench_micro(quick: bool) -> dict:
    ops = 2_000 if quick else 20_000
    evals = 20_000 if quick else 200_000
    store_bytes = (4 if quick else 32) * 1024 * 1024

    # Warm pass: the first drive/servo construction pays one-time
    # geometry and import costs that would otherwise be billed to the
    # optimized row (it is measured first).
    _drive_write_rate(min(ops, 1_000))
    _servo_eval_rate(min(evals, 5_000))

    drive_fast = _drive_write_rate(ops)
    servo_fast = _servo_eval_rate(evals)
    with perf.perf_baseline():
        drive_slow = _drive_write_rate(ops)
        servo_slow = _servo_eval_rate(evals)

    return {
        "drive_seq_write_ops_per_s": {
            "optimized": round(drive_fast),
            "gated_baseline": round(drive_slow),
            "speedup": round(drive_fast / drive_slow, 2),
        },
        "servo_success_probability_evals_per_s": {
            "optimized": round(servo_fast),
            "gated_baseline": round(servo_slow),
            "speedup": round(servo_fast / servo_slow, 2),
        },
        "sector_store": _sector_store_rates(store_bytes),
    }


SECTIONS = ("sweep", "telemetry", "vecphys", "fleet", "fleetsim", "micro")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument(
        "--only",
        choices=SECTIONS,
        default=None,
        help="run a single section (telemetry/vecphys pull in the sweep)",
    )
    parser.add_argument("--out", default="BENCH_PR10.json", help="output path")
    args = parser.parse_args(argv)

    def wanted(section: str) -> bool:
        return args.only is None or args.only == section

    report = {
        "schema": "repro-bench/6",
        "generated_by": "tools/bench_json.py"
        + (" --quick" if args.quick else "")
        + (f" --only {args.only}" if args.only else ""),
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    sweep = None
    if args.only in (None, "sweep", "telemetry", "vecphys"):
        sweep = bench_sweep(args.quick)
        report["sweep"] = sweep
    if wanted("telemetry"):
        report["telemetry"] = bench_telemetry(args.quick, sweep)
    if wanted("vecphys"):
        report["vecphys"] = bench_vecphys(args.quick, sweep)
    if wanted("fleet"):
        report["fleet"] = bench_fleet(args.quick)
    if wanted("fleetsim"):
        report["fleetsim"] = bench_fleetsim(args.quick)
    if wanted("micro"):
        report["micro"] = bench_micro(args.quick)

    path = pathlib.Path(args.out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {path}]")

    if sweep is not None and not sweep["bit_identical_to_gated_baseline"]:
        print("FAIL: optimized sweep diverged from the gated baseline", file=sys.stderr)
        return 1
    telemetry = report.get("telemetry")
    if telemetry is not None:
        if not telemetry["traced_bit_identical"]:
            print(
                "FAIL: traced sweep diverged from the telemetry-off sweep",
                file=sys.stderr,
            )
            return 1
        pr2 = telemetry.get("pr2_reference")
        if pr2 is not None and not pr2["bit_identical_to_pr2"]:
            print(
                "FAIL: telemetry-off sweep diverged from the PR2 recording",
                file=sys.stderr,
            )
            return 1
    vecphys_section = report.get("vecphys")
    if vecphys_section is not None:
        if not vecphys_section["bit_identical_to_scalar_path"]:
            print(
                "FAIL: vectorized sweep diverged from the scalar hot path",
                file=sys.stderr,
            )
            return 1
        pr3 = vecphys_section.get("pr3_reference")
        if pr3 is not None:
            if not pr3["bit_identical_to_pr3"]:
                print(
                    "FAIL: vectorized sweep diverged from the PR3 recording",
                    file=sys.stderr,
                )
                return 1
            if not pr3["meets_speedup_target"]:
                print(
                    f"FAIL: vectorized sweep speedup {pr3['speedup_vs_pr3']}x "
                    f"is below the {VEC_SPEEDUP_TARGET}x target vs PR3",
                    file=sys.stderr,
                )
                return 1
    fleet = report.get("fleet")
    if fleet is not None:
        if not fleet["bit_identical_to_scalar_path"]:
            print(
                "FAIL: batched rack sweep diverged from the per-bay scalar loop",
                file=sys.stderr,
            )
            return 1
        if not fleet.get("meets_speedup_target", True):
            print(
                f"FAIL: batched rack sweep speedup "
                f"{fleet['speedup_vs_scalar_path']}x is below the "
                f"{FLEET_SPEEDUP_TARGET}x target vs the scalar loop",
                file=sys.stderr,
            )
            return 1
    fleetsim = report.get("fleetsim")
    if fleetsim is not None:
        if not fleetsim["shard_identical"]:
            print(
                "FAIL: rack-sharded fleet outcomes diverged from the "
                "single-scheduler run",
                file=sys.stderr,
            )
            return 1
        if not fleetsim.get("meets_drives_target", True):
            print(
                f"FAIL: fleet campaign simulated {fleetsim['drives_simulated']} "
                f"drives, below the {FLEETSIM_DRIVES_TARGET}-drive target",
                file=sys.stderr,
            )
            return 1
        if not fleetsim.get("meets_events_per_s_target", True):
            print(
                f"FAIL: fleet campaign ran {fleetsim['events_per_s']} events/s, "
                f"below the {FLEETSIM_EVENTS_PER_S_TARGET}/s target",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
