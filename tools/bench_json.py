"""Machine-readable performance trajectory: writes BENCH_PR2.json.

Times the hot-path I/O engine against two baselines:

* the *gated* baseline — the same tree with the ``REPRO_SERVO_CACHE``
  and ``REPRO_IO_FAST_PATH`` flags off (``repro.perf.perf_baseline``),
  which isolates the memoized servo chain and the static fast path; and
* the *recorded seed* reference — the pre-optimization commit, measured
  once with the same protocol and recorded below, which also credits
  the ungated structural wins (hoisted FIO loop, bisected zone lookup,
  shared per-family geometry, page-granular sector store).

The cold Figure 2 sweep is the headline number; the sweep CSVs are
hashed so every run re-proves bit-identity against both baselines.

Usage:
    python tools/bench_json.py [--quick] [--out BENCH_PR2.json]

``--quick`` shrinks the sweep and repeat counts for CI smoke runs; the
seed-reference comparison only applies to the full protocol, so quick
output omits the recorded-reference speedup.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import perf  # noqa: E402
from repro.core.scenario import Scenario  # noqa: E402
from repro.experiments.figure2 import run_figure2  # noqa: E402
from repro.hdd.drive import HardDiskDrive  # noqa: E402
from repro.hdd.sector_store import SectorStore  # noqa: E402
from repro.hdd.servo import OpKind, ServoSystem, VibrationInput  # noqa: E402
from repro.rng import make_rng  # noqa: E402
from repro.sim.clock import VirtualClock  # noqa: E402

#: The recorded pre-optimization reference: commit bd2caf7 (the seed of
#: this PR), measured on the development host with the exact full-mode
#: protocol below (best of 3 cold runs).  The CSV digest is
#: platform-independent (IEEE-754 arithmetic end to end), so any run
#: can re-verify bit-identity against the seed; the wall time is only
#: meaningful relative to `sweep.optimized_wall_s` from the same host.
SEED_REFERENCE = {
    "commit": "bd2caf7",
    "wall_s": 0.206,
    "csv_sha256": "f3c748ef335267d39601ba1114796e7ca581ab446dd71c04878f26ca1f418913",
}

FULL_GRID = [float(f) for f in range(100, 2100, 100)]
FULL_RUNTIME_S = 0.4
FULL_REPEATS = 3
QUICK_GRID = [float(f) for f in range(200, 2200, 400)]
QUICK_RUNTIME_S = 0.2
QUICK_REPEATS = 1
SWEEP_SEED = 7


def _sweep_once(grid, runtime_s):
    result = run_figure2(
        frequencies_hz=grid,
        scenarios=[Scenario.scenario_2()],
        fio_runtime_s=runtime_s,
        seed=SWEEP_SEED,
    )
    return result.to_csv("write") + result.to_csv("read")


def _time_sweep(grid, runtime_s, repeats):
    """Best-of-N cold sweep wall time plus the CSV digest."""
    best = None
    digest = ""
    for _ in range(repeats):
        t0 = time.perf_counter()
        csv = _sweep_once(grid, runtime_s)
        wall = time.perf_counter() - t0
        digest = hashlib.sha256(csv.encode()).hexdigest()
        best = wall if best is None or wall < best else best
    return best, digest


def bench_sweep(quick: bool) -> dict:
    grid = QUICK_GRID if quick else FULL_GRID
    runtime_s = QUICK_RUNTIME_S if quick else FULL_RUNTIME_S
    repeats = QUICK_REPEATS if quick else FULL_REPEATS

    _sweep_once(grid, runtime_s)  # warm imports and the locate cache
    optimized_wall, optimized_sha = _time_sweep(grid, runtime_s, repeats)
    with perf.perf_baseline():
        baseline_wall, baseline_sha = _time_sweep(grid, runtime_s, repeats)

    section = {
        "grid_hz": [grid[0], grid[-1], grid[1] - grid[0]],
        "scenario": Scenario.scenario_2().name,
        "fio_runtime_s": runtime_s,
        "seed": SWEEP_SEED,
        "repeats": repeats,
        "optimized_wall_s": round(optimized_wall, 4),
        "gated_baseline_wall_s": round(baseline_wall, 4),
        "speedup_vs_gated_baseline": round(baseline_wall / optimized_wall, 2),
        "optimized_csv_sha256": optimized_sha,
        "gated_baseline_csv_sha256": baseline_sha,
        "bit_identical_to_gated_baseline": optimized_sha == baseline_sha,
    }
    if not quick:
        section["seed_reference"] = dict(
            SEED_REFERENCE,
            bit_identical_to_seed=optimized_sha == SEED_REFERENCE["csv_sha256"],
            speedup_vs_seed=round(SEED_REFERENCE["wall_s"] / optimized_wall, 2),
        )
    return section


def _drive_write_rate(ops: int) -> float:
    drive = HardDiskDrive(clock=VirtualClock(), rng=make_rng(1), store_data=False)
    t0 = time.perf_counter()
    for i in range(ops):
        drive.write((i % 10_000) * 8, 8)
    return ops / (time.perf_counter() - t0)


def _servo_eval_rate(evals: int) -> float:
    servo = ServoSystem()
    inputs = [
        VibrationInput(frequency_hz=float(f), displacement_m=1e-8)
        for f in range(100, 2100, 100)
    ]
    t0 = time.perf_counter()
    done = 0
    while done < evals:
        for vib in inputs:
            servo.success_probability(OpKind.WRITE, vib)
        done += len(inputs)
    return done / (time.perf_counter() - t0)


def _sector_store_rates(nbytes: int) -> dict:
    store = SectorStore()
    block = b"\xa5" * 4096
    blocks = nbytes // len(block)
    t0 = time.perf_counter()
    for i in range(blocks):
        store.write(i * 8, block)
    write_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for i in range(blocks):
        store.read(i * 8, 8)
    read_s = time.perf_counter() - t0
    return {
        "write_mb_per_s": round(nbytes / 1e6 / write_s, 1),
        "read_mb_per_s": round(nbytes / 1e6 / read_s, 1),
    }


def bench_micro(quick: bool) -> dict:
    ops = 2_000 if quick else 20_000
    evals = 20_000 if quick else 200_000
    store_bytes = (4 if quick else 32) * 1024 * 1024

    drive_fast = _drive_write_rate(ops)
    servo_fast = _servo_eval_rate(evals)
    with perf.perf_baseline():
        drive_slow = _drive_write_rate(ops)
        servo_slow = _servo_eval_rate(evals)

    return {
        "drive_seq_write_ops_per_s": {
            "optimized": round(drive_fast),
            "gated_baseline": round(drive_slow),
            "speedup": round(drive_fast / drive_slow, 2),
        },
        "servo_success_probability_evals_per_s": {
            "optimized": round(servo_fast),
            "gated_baseline": round(servo_slow),
            "speedup": round(servo_fast / servo_slow, 2),
        },
        "sector_store": _sector_store_rates(store_bytes),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument("--out", default="BENCH_PR2.json", help="output path")
    args = parser.parse_args(argv)

    report = {
        "schema": "repro-bench/2",
        "generated_by": "tools/bench_json.py" + (" --quick" if args.quick else ""),
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sweep": bench_sweep(args.quick),
        "micro": bench_micro(args.quick),
    }

    path = pathlib.Path(args.out)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {path}]")

    if not report["sweep"]["bit_identical_to_gated_baseline"]:
        print("FAIL: optimized sweep diverged from the gated baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
