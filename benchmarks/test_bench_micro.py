"""Microbenchmarks of the substrates (real wall-clock performance).

Unlike the table/figure benches (which measure *virtual* outcomes),
these measure how fast the simulator itself runs — useful to keep the
reproduction usable as experiments grow.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.hdd.drive import HardDiskDrive
from repro.hdd.sector_store import SectorStore
from repro.hdd.servo import OpKind, ServoSystem, VibrationInput
from repro.rng import make_rng
from repro.sim.clock import VirtualClock
from repro.storage.block import BlockDevice
from repro.storage.fs.filesystem import SimFS
from repro.storage.kv.db import DB, Options
from repro.workloads.fio import FioJob, FioTester, IOMode


def fresh_drive(seed=1):
    return HardDiskDrive(clock=VirtualClock(), rng=make_rng(seed))


def test_drive_sequential_write_rate(benchmark):
    """Raw simulated-drive op rate (static fast path + servo memo on)."""
    drive = fresh_drive()

    def run():
        for i in range(2000):
            drive.write((i % 10_000) * 8, 8)

    benchmark(run)
    assert drive.stats.writes >= 2000


def test_drive_sequential_write_rate_gated_baseline(benchmark):
    """The same op loop with the perf flags off: the 'before' number.

    ``perf_baseline`` disables the memoized servo chain and the static
    fast path, so the drive re-evaluates the servo per attempt exactly
    like the pre-optimization engine.
    """
    with perf.perf_baseline():
        drive = fresh_drive()

        def run():
            for i in range(2000):
                drive.write((i % 10_000) * 8, 8)

        benchmark(run)
    assert drive.stats.writes >= 2000


def _degrading_vibration(servo: ServoSystem) -> VibrationInput:
    """A tone in the partial-degradation regime (faults, not stalls).

    The fault probability turns over sharply with displacement, so the
    p = 0.5 point is found by bisection rather than a decade scan.
    """
    lo, hi = 1e-9, 1e-6
    for _ in range(60):
        mid = (lo + hi) / 2.0
        p = servo.success_probability(
            OpKind.WRITE, VibrationInput(frequency_hz=700.0, displacement_m=mid)
        )
        if p > 0.5:
            lo = mid
        else:
            hi = mid
    vib = VibrationInput(frequency_hz=700.0, displacement_m=lo)
    p = servo.success_probability(OpKind.WRITE, vib)
    assert 0.05 < p < 0.95, f"bisection left the partial regime: p={p}"
    return vib


def test_drive_retry_path_rate(benchmark):
    """Op rate in the retry-heavy regime of Table 1 (10-15 cm).

    Exercises the RNG draw + retry-penalty loop rather than the
    quiescent single-attempt path the sequential benches hit.
    """
    from repro.errors import MediumError

    drive = fresh_drive()
    drive.set_vibration(_degrading_vibration(drive.profile.servo))
    errors = [0]

    def run():
        for i in range(500):
            try:
                drive.write((i % 10_000) * 8, 8)
            except MediumError:
                errors[0] += 1

    benchmark(run)
    assert drive.stats.retries > 0


def test_servo_chain_memoized_rate(benchmark):
    """success_probability throughput over a sweep grid, memo warm."""
    servo = ServoSystem()
    inputs = [
        VibrationInput(frequency_hz=float(f), displacement_m=1e-8)
        for f in range(100, 2100, 100)
    ]

    def run():
        total = 0.0
        for _ in range(50):
            for vib in inputs:
                total += servo.success_probability(OpKind.WRITE, vib)
        return total

    assert benchmark(run) >= 0.0


def test_servo_chain_uncached_rate(benchmark):
    """The same grid with the servo memo disabled: the 'before' number."""
    with perf.perf_baseline():
        servo = ServoSystem()
        inputs = [
            VibrationInput(frequency_hz=float(f), displacement_m=1e-8)
            for f in range(100, 2100, 100)
        ]

        def run():
            total = 0.0
            for _ in range(50):
                for vib in inputs:
                    total += servo.success_probability(OpKind.WRITE, vib)
            return total

        assert benchmark(run) >= 0.0


def test_sector_store_page_churn(benchmark):
    """Page-granular store under 4 KiB write/read churn."""
    store = SectorStore()
    block = b"\xa5" * 4096

    def run():
        for i in range(1000):
            store.write(i * 8, block)
        for i in range(1000):
            store.read(i * 8, 8)

    benchmark(run)
    assert store.read(0, 8) == block


def test_fio_one_second_run(benchmark):
    """One virtual second of FIO."""
    def run():
        drive = fresh_drive()
        return FioTester(drive).run(FioJob(mode=IOMode.SEQ_WRITE, runtime_s=1.0))

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.throughput_mbps == pytest.approx(22.7, abs=0.4)


def test_filesystem_small_file_churn(benchmark):
    """Create/write/read/unlink loops on the journaling filesystem."""
    drive = fresh_drive()
    fs = SimFS.mkfs(BlockDevice(drive))

    counter = [0]

    def churn():
        for _ in range(50):
            index = counter[0]
            counter[0] += 1
            path = f"/file-{index}"
            fs.create(path)
            fs.write_file(path, b"payload" * 64)
            fs.read_file(path)
            fs.unlink(path)

    benchmark(churn)


def test_kv_put_get_rate(benchmark):
    """LSM store operation rate with flushes enabled."""
    drive = fresh_drive()
    fs = SimFS.mkfs(BlockDevice(drive))
    fs.mkdir("/db")
    db = DB.open(fs, "/db", options=Options(write_buffer_size=256 * 1024), rng=make_rng(3))

    counter = [0]

    def run():
        base = counter[0]
        counter[0] += 2000
        for i in range(base, base + 2000):
            db.put(f"key-{i:08d}".encode(), b"v" * 64)
        for i in range(base, base + 2000, 4):
            db.get(f"key-{i:08d}".encode())

    benchmark(run)
    assert db.stats.puts >= 2000


def test_coupling_chain_evaluation_rate(benchmark):
    """Full physics-chain evaluations per second (planner workload)."""
    from repro.core.attacker import AttackConfig
    from repro.core.coupling import AttackCoupling

    coupling = AttackCoupling.paper_setup()

    def run():
        total = 0.0
        for freq in range(100, 2100, 10):
            config = AttackConfig(float(freq), 140.0, 0.01)
            total += coupling.vibration_at_drive(config).displacement_m
        return total

    total = benchmark(run)
    assert total > 0.0
