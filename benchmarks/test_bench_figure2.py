"""Figure 2: throughput vs. attack frequency for Scenarios 1-3.

Regenerates both panels (2a sequential write, 2b sequential read) and
asserts the paper's qualitative claims: a dead zone from ~300 Hz, wider
for plastic than metal, writes worse than reads.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2

from conftest import save_result


@pytest.fixture(scope="module")
def figure2_result():
    """The full-grid run shared by the assertion benches."""
    return run_figure2(fio_runtime_s=0.5, seed=42)


def _by_freq(sweep):
    return {p.frequency_hz: p for p in sweep.points}


def test_figure2a_sequential_write(benchmark, figure2_result, results_dir):
    """Figure 2a: the write panel (regenerates a compact grid)."""

    def regenerate():
        return run_figure2(
            frequencies_hz=[300.0, 650.0, 1000.0, 1300.0, 1700.0, 3000.0],
            fio_runtime_s=0.3,
            seed=42,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for name, sweep in result.sweeps.items():
        points = _by_freq(sweep)
        assert points[650.0].write_mbps < 1.0, f"{name} should be dead at 650 Hz"
        assert points[3000.0].write_mbps > 20.0, f"{name} should be fine at 3 kHz"
    # Paper shape: writes degrade at least as widely as reads.
    for sweep in figure2_result.sweeps.values():
        write_zero = sum(1 for p in sweep.points if p.write_mbps < 1.0)
        read_zero = sum(1 for p in sweep.points if p.read_mbps < 1.0)
        assert write_zero >= read_zero
    benchmark.extra_info["baseline_write_mbps"] = figure2_result.sweeps[
        "Scenario 2"
    ].baseline_write_mbps
    save_result(results_dir, "figure2", figure2_result.render())


def test_figure2b_sequential_read(benchmark, figure2_result):
    """Figure 2b: the read panel, plus the band-edge orderings."""

    def regenerate():
        return run_figure2(
            frequencies_hz=[300.0, 650.0, 1000.0, 3000.0],
            fio_runtime_s=0.3,
            seed=42,
        )

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for sweep in result.sweeps.values():
        points = _by_freq(sweep)
        assert points[650.0].read_mbps < 2.0
        assert points[3000.0].read_mbps > 17.0

    # Band-edge shape on the full-grid result.
    plastic = figure2_result.sweeps["Scenario 2"]
    metal = figure2_result.sweeps["Scenario 3"]
    for sweep in figure2_result.sweeps.values():
        band = sweep.vulnerable_band(0.5, "write")
        assert band is not None and band[0] <= 400.0  # ~300 Hz onset
    assert metal.vulnerable_band(0.5, "write")[1] < plastic.vulnerable_band(0.5, "write")[1]
    assert (
        metal.vulnerable_band(0.5, "read")[1]
        <= metal.vulnerable_band(0.5, "write")[1]
    )
