"""Threat-model objectives bench (Section 3's two attacker goals)."""

from __future__ import annotations

import pytest

from repro.experiments.objectives import run_objective_comparison

from conftest import save_result


def test_objective_comparison(benchmark, results_dir):
    """Intermittent tones delay; a sustained tone kills."""
    baseline, degrade, crash, table = benchmark.pedantic(
        lambda: run_objective_comparison(total_s=260.0, duty_cycle=0.3, seed=0),
        rounds=1,
        iterations=1,
    )
    assert not baseline.crashed and not degrade.crashed
    assert crash.crashed and "error -5" in crash.crash.error_output
    assert degrade.work_rate_per_s < 0.85 * baseline.work_rate_per_s
    assert degrade.completion_fraction > 0.99
    benchmark.extra_info["baseline_rate"] = baseline.work_rate_per_s
    benchmark.extra_info["degraded_rate"] = degrade.work_rate_per_s
    save_result(results_dir, "objectives", table.render())
