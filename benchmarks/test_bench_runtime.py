"""The campaign runner: parallel identity and cache speedup.

Demonstrates the two runtime acceptance criteria at benchmark scale:
a parallel Figure 2 run is byte-identical to the sequential one, and a
warm-cache re-run finishes in well under half the cold wall time.
"""

from __future__ import annotations

import time

import pytest

from repro.core.scenario import Scenario
from repro.experiments.figure2 import run_figure2
from repro.runtime import ResultCache, SweepRunner

from conftest import save_result

GRID = [300.0, 650.0, 1000.0, 1300.0, 1700.0, 3000.0]


def test_parallel_identity(benchmark):
    """``--workers 4`` reproduces the sequential CSV byte for byte."""
    serial = run_figure2(frequencies_hz=GRID, fio_runtime_s=0.3, seed=7)

    def parallel_run():
        return run_figure2(frequencies_hz=GRID, fio_runtime_s=0.3, seed=7, workers=4)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert parallel.to_csv("write") == serial.to_csv("write")
    assert parallel.to_csv("read") == serial.to_csv("read")
    benchmark.extra_info["points"] = len(GRID) * len(serial.sweeps)


def test_warm_cache_halves_wall_time(benchmark, tmp_path, results_dir):
    """A memoized re-run must cost less than half the cold run."""
    scenarios = Scenario.all_three()

    t0 = time.perf_counter()
    cold = run_figure2(
        frequencies_hz=GRID, scenarios=scenarios, fio_runtime_s=0.3, seed=7,
        cache_dir=str(tmp_path),
    )
    cold_s = time.perf_counter() - t0

    warm_cache = ResultCache(tmp_path)

    def warm_run():
        return run_figure2(
            frequencies_hz=GRID, scenarios=scenarios, fio_runtime_s=0.3, seed=7,
            runner=SweepRunner(cache=warm_cache),
        )

    t0 = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    assert warm.to_csv("write") == cold.to_csv("write")
    assert warm_cache.stats.misses == 0
    assert warm_s < cold_s / 2.0, (
        f"warm {warm_s:.2f}s not under half of cold {cold_s:.2f}s"
    )
    benchmark.extra_info["cold_s"] = round(cold_s, 3)
    benchmark.extra_info["warm_s"] = round(warm_s, 3)
    benchmark.extra_info["speedup"] = round(cold_s / max(warm_s, 1e-9), 1)
    save_result(
        results_dir,
        "runtime_cache",
        (
            "Campaign cache speedup (Figure 2 grid, 3 scenarios x "
            f"{len(GRID)} points)\n"
            f"  cold run: {cold_s:.2f} s\n"
            f"  warm run: {warm_s:.2f} s ({cold_s / max(warm_s, 1e-9):.0f}x faster, "
            f"{warm_cache.stats.hits} points from cache)"
        ),
    )
