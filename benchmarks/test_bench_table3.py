"""Table 3: software crashes under a prolonged attack.

Regenerates the crash table (Ext4, Ubuntu server, RocksDB under the
best attacking parameters) and asserts times near the paper's ~80 s
with the right ordering and error signatures.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import TABLE3_PAPER
from repro.experiments.table3 import run_table3

from conftest import save_result


def test_table3_crashes(benchmark, results_dir):
    """The full Table 3 regeneration."""
    result = benchmark.pedantic(
        lambda: run_table3(deadline_s=200.0), rounds=1, iterations=1
    )

    assert set(result.reports) == {"Ext4", "Ubuntu", "RocksDB"}
    assert all(report is not None for report in result.reports.values())

    # Crash times land near the paper's values (80.0 / 81.0 / 81.3 s).
    for name, report in result.reports.items():
        assert report.time_to_crash_s == pytest.approx(TABLE3_PAPER[name], abs=5.0)

    # Ordering: Ext4 first, then the OS, then RocksDB.
    times = {name: r.time_to_crash_s for name, r in result.reports.items()}
    assert times["Ext4"] <= times["Ubuntu"] <= times["RocksDB"]

    # Error signatures match the paper's observations.
    assert "error -5" in result.reports["Ext4"].error_output
    assert "Kernel panic" in result.reports["Ubuntu"].error_output
    assert "sync_without_flush" in result.reports["RocksDB"].error_output

    average = result.average_time_to_crash_s()
    assert average == pytest.approx(80.8, abs=3.0)
    benchmark.extra_info["average_time_to_crash_s"] = average
    benchmark.extra_info["paper_average_s"] = 80.8
    save_result(results_dir, "table3", result.render())


def test_table3_no_attack_means_no_crash(benchmark):
    """Control: the same victims survive a quiet tank."""
    from repro.core.monitor import AvailabilityMonitor
    from repro.experiments.apps import Ext4Victim, RocksDBVictim

    def survive():
        outcomes = []
        for factory in (Ext4Victim, RocksDBVictim):
            victim = factory()
            monitor = AvailabilityMonitor(victim.drive.clock)
            outcomes.append(monitor.watch(victim, deadline_s=30.0))
        return outcomes

    outcomes = benchmark.pedantic(survive, rounds=1, iterations=1)
    assert outcomes == [None, None]
