"""Table 2: RocksDB readwhilewriting vs. speaker distance.

Regenerates the table (fresh drive + filesystem + LSM store per
distance) and asserts the paper's shape: zero through 10 cm, partial at
15 cm, recovered by 20-25 cm — note RocksDB's dead zone extends farther
(10 cm) than raw FIO's because the write path stalls the pipeline.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import TABLE2_PAPER
from repro.experiments.table2 import run_table2

from conftest import save_result


def test_table2_rocksdb_range_profile(benchmark, results_dir):
    """The full Table 2 regeneration."""
    result = benchmark.pedantic(
        lambda: run_table2(duration_s=1.0, seed=42), rounds=1, iterations=1
    )
    by_cm = {round(d * 100): r for d, r in result.points}

    # Baseline lands in the paper's regime (~1e5 ops/s, ~9 MB/s).
    assert result.baseline.ops_per_second == pytest.approx(110_000, rel=0.25)
    assert result.baseline.throughput_mbps == pytest.approx(8.7, rel=0.25)

    # Dead through 10 cm (farther than FIO reads: the writer stalls all).
    for cm in (1, 5, 10):
        assert by_cm[cm].throughput_mbps < 0.5
        assert by_cm[cm].ops_per_second < 0.05 * result.baseline.ops_per_second

    # Partial at 15 cm.
    partial = by_cm[15]
    assert 0.1 * result.baseline.throughput_mbps < partial.throughput_mbps
    assert partial.throughput_mbps < 0.9 * result.baseline.throughput_mbps

    # Recovered by 20-25 cm.
    for cm in (20, 25):
        assert by_cm[cm].throughput_mbps == pytest.approx(
            result.baseline.throughput_mbps, rel=0.12
        )

    benchmark.extra_info["paper_rows"] = {
        str(k): v for k, v in TABLE2_PAPER.items() if k is not None
    }
    save_result(results_dir, "table2", result.render())


def test_table2_dead_zone_wider_than_fio_reads(benchmark):
    """Cross-check against Table 1: at 10 cm FIO reads still move data
    (12.6 MB/s in the paper) while RocksDB serves nothing."""
    from repro.experiments.table1 import run_table1

    def both():
        t1 = run_table1(distances_m=(0.10,), fio_runtime_s=1.0, seed=9)
        t2 = run_table2(distances_m=(0.10,), duration_s=1.0, seed=9)
        return t1, t2

    table1, table2 = benchmark.pedantic(both, rounds=1, iterations=1)
    fio_read = table1.range_test.points[0].read.throughput_mbps
    rocks = table2.points[0][1].throughput_mbps
    assert fio_read > 8.0
    assert rocks < 0.5
