"""Benchmark helpers: result artifacts and shared configuration."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where each benchmark drops its rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered experiment artefact and echo it to stdout."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
