"""Section 5 ablations: materials, source level, water, defenses.

These regenerate the design-space tables DESIGN.md calls out and assert
their qualitative orderings.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_defense_ablation,
    run_drive_type_ablation,
    run_material_ablation,
    run_source_level_ablation,
    run_water_conditions_ablation,
)

from conftest import save_result


def test_material_ablation(benchmark, results_dir):
    """Container material is a critical factor (Section 4.1)."""
    table = benchmark.pedantic(run_material_ablation, rounds=1, iterations=1)
    rows = {row[0]: [float(c) for c in row[1:]] for row in table.rows}
    # Every material still lets the 650 Hz attack through at 1 cm.
    for name, ratios in rows.items():
        assert ratios[1] > 1.0, f"{name} should not save the drive at 650 Hz"
    # Stiff metals attenuate the high end more than plastic.
    plastic_17 = rows["hard plastic"][4]
    for metal in ("aluminum", "steel", "titanium"):
        assert rows[metal][4] < plastic_17
    save_result(results_dir, "ablation_material", table.render())


def test_source_level_ablation(benchmark, results_dir):
    """Effective range grows ~10x per +20 dB (spreading-limited)."""
    table = benchmark.pedantic(
        lambda: run_source_level_ablation(levels_db=(140.0, 160.0, 180.0, 200.0, 220.0)),
        rounds=1,
        iterations=1,
    )

    def parse(cell: str) -> float:
        if cell.startswith(">"):
            return float(cell[1:])
        if cell.startswith("0"):
            return 0.0
        return float(cell)

    ranges = [parse(row[1]) for row in table.rows]
    assert ranges == sorted(ranges)
    # +20 dB of source level buys roughly an order of magnitude.
    for small, big in zip(ranges, ranges[1:]):
        if small > 0.01 and big < 90_000:
            assert big / small == pytest.approx(10.0, rel=0.35)
    save_result(results_dir, "ablation_source_level", table.render())


def test_water_conditions_ablation(benchmark, results_dir):
    """Sound speed / absorption across deployment sites (Section 5)."""
    table = benchmark.pedantic(run_water_conditions_ablation, rounds=1, iterations=1)
    rows = {row[0]: row[1:] for row in table.rows}
    # Warm shallow sea is the fastest medium of the set.
    speeds = {name: float(cells[0]) for name, cells in rows.items()}
    assert speeds["warm shallow sea"] == max(speeds.values())
    # Fresh water absorbs far less than any sea site at 500 Hz.
    alphas = {name: float(cells[1]) for name, cells in rows.items()}
    assert alphas["lab tank (fresh, 21 C)"] < min(
        v for k, v in alphas.items() if k != "lab tank (fresh, 21 C)"
    )
    save_result(results_dir, "ablation_water", table.render())


def test_drive_type_ablation(benchmark, results_dir):
    """Different HDD types under the same attack (Section 5)."""
    table = benchmark.pedantic(run_drive_type_ablation, rounds=1, iterations=1)
    rows = {row[0]: [float(c) for c in row[1:]] for row in table.rows}
    laptop = rows["2.5in laptop 320GB"]
    desktop = rows["Seagate Barracuda 500GB (victim)"]
    enterprise = rows["enterprise 10k 600GB"]
    # Sensitivity ordering holds at the paper's tone (650 Hz, column 1).
    assert laptop[1] > desktop[1] > enterprise[1]
    # RV compensation saves the enterprise drive at 650 Hz but leaves a
    # residual band near 900 Hz.
    assert enterprise[1] < 1.0 < enterprise[2]
    save_result(results_dir, "ablation_drive_type", table.render())


def test_defense_ablation(benchmark, results_dir):
    """Defense trade-offs: insertion loss vs. thermal cost."""
    table = benchmark.pedantic(run_defense_ablation, rounds=1, iterations=1)
    rows = {row[0]: row[1:] for row in table.rows}
    thin = rows["absorbent coating (2 cm foam)"]
    thick = rows["absorbent coating (5 cm foam)"]
    # Thicker foam: more insertion loss, more thermal cost.
    assert float(thick[0]) > float(thin[0])
    assert float(thick[3]) > float(thin[3])
    # The firmware filter costs no cooling.
    firmware = rows["firmware notch filter (x1.8 corner)"]
    assert float(firmware[3]) == 0.0
    save_result(results_dir, "ablation_defense", table.render())
