"""Extension benches: RAID common-mode, rack coverage, detection.

These go beyond the paper's evaluation into its Section 5 questions:
does redundancy help (no — the attack is common-mode), how much of a
rack does one speaker take out (all of it), and can a defender detect
the attack (yes, from metres away).
"""

from __future__ import annotations

import pytest

from repro.acoustics.ambient import AmbientNoise
from repro.core.attacker import AttackConfig
from repro.core.fleet import DriveRack
from repro.errors import BlockIOError
from repro.hdd.servo import VibrationInput
from repro.storage.block import BlockDevice
from repro.storage.raid import ArrayFailed, RaidArray, RaidLevel
from repro.units import BLOCK_4K

from conftest import save_result


def _stall_one(device):
    drive = device.drive
    servo = drive.profile.servo
    mechanical = servo.hsa.response(650.0) * servo.head_gain * servo.rejection(650.0)
    drive.set_vibration(VibrationInput(650.0, 2.0 * servo.servo_limit_m / mechanical))


def test_raid_common_mode_ablation(benchmark, results_dir):
    """RAID5 survives one dead member but not one speaker."""

    def run():
        outcomes = {}
        # Case A: one independent mechanical failure.
        rack = DriveRack(bays=3)
        array = RaidArray.from_rack(rack, RaidLevel.RAID5)
        for i in range(6):
            array.write_block(i, bytes([i]) * BLOCK_4K)
        _stall_one(array.members[0].device)
        survived = all(array.read_block(i) == bytes([i]) * BLOCK_4K for i in range(6))
        outcomes["independent_failure_survived"] = survived and array.online

        # Case B: the acoustic attack (common mode).
        rack = DriveRack(bays=3)
        array = RaidArray.from_rack(rack, RaidLevel.RAID5)
        for i in range(6):
            array.write_block(i, bytes([i]) * BLOCK_4K)
        rack.apply_attack(AttackConfig.paper_best())
        try:
            for i in range(6):
                array.read_block(i)
            outcomes["attack_survived"] = array.online
        except (ArrayFailed, BlockIOError):
            outcomes["attack_survived"] = False
        outcomes["attack_array_online"] = array.online
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcomes["independent_failure_survived"] is True
    assert outcomes["attack_survived"] is False
    assert outcomes["attack_array_online"] is False
    save_result(
        results_dir,
        "ablation_raid",
        "Ablation: RAID5 vs failures\n"
        f"independent member failure: array survives = {outcomes['independent_failure_survived']}\n"
        f"acoustic attack (common mode): array survives = {outcomes['attack_survived']}",
    )


def test_rack_coverage_vs_distance(benchmark, results_dir):
    """How many of a 5-bay tower one speaker disables, by distance."""

    def run():
        rows = []
        for cm in (1, 5, 10, 14, 20, 25):
            rack = DriveRack(bays=5)
            rack.apply_attack(AttackConfig(650.0, 140.0, cm / 100.0))
            probabilities = rack.write_success_probabilities()
            disabled = sum(1 for p in probabilities.values() if p < 0.5)
            rows.append((cm, disabled, len(rack.stalled_bays())))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_cm = {cm: (disabled, stalled) for cm, disabled, stalled in rows}
    assert by_cm[1] == (5, 5)       # whole tower down at 1 cm
    assert by_cm[25][0] == 0        # untouched at 25 cm
    # Coverage shrinks monotonically with distance.
    coverage = [disabled for _, disabled, _ in rows]
    assert coverage == sorted(coverage, reverse=True)
    lines = ["Ablation: rack coverage vs distance (650 Hz, 140 dB)",
             "distance_cm  bays_write_disabled  bays_stalled"]
    lines += [f"{cm:>11}  {d:>19}  {s:>12}" for cm, d, s in rows]
    save_result(results_dir, "ablation_rack", "\n".join(lines))


def test_ycsb_mixes_under_attack(benchmark, results_dir):
    """YCSB A-F quiet vs attacked: write-heavy mixes collapse first."""
    from repro.core.coupling import AttackCoupling
    from repro.hdd.drive import HardDiskDrive
    from repro.rng import make_rng
    from repro.sim.clock import VirtualClock
    from repro.storage.fs.filesystem import SimFS
    from repro.storage.kv.db import DB, Options
    from repro.workloads.ycsb import WORKLOADS, YcsbRunner

    def run():
        rows = {}
        for name in ("A", "B", "C", "F"):
            rates = []
            for attacked in (False, True):
                rng = make_rng(7).fork(f"{name}/{attacked}")
                drive = HardDiskDrive(clock=VirtualClock(), rng=rng.fork("d"))
                fs = SimFS.mkfs(BlockDevice(drive), commit_interval_s=3600.0)
                fs.mkdir("/db")
                db = DB.open(
                    fs, "/db",
                    options=Options(wal_sync_every_bytes=64 * 1024),
                    rng=rng.fork("db"),
                )
                runner = YcsbRunner(db, record_count=1000, rng=rng.fork("y"))
                runner.load()
                if attacked:
                    coupling = AttackCoupling.paper_setup()
                    coupling.apply(drive, AttackConfig(650.0, 140.0, 0.12))
                rates.append(runner.run(WORKLOADS[name], duration_s=0.5).ops_per_second)
            rows[name] = (rates[0], rates[1], rates[1] / rates[0])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # The read-only mix survives far better than the update-heavy ones.
    assert rows["C"][2] > 0.5
    assert rows["A"][2] < rows["C"][2]
    assert rows["F"][2] < rows["C"][2]
    lines = ["Extension: YCSB mixes quiet vs attacked (650 Hz, 12 cm)",
             "mix  quiet ops/s  attacked ops/s  retained"]
    lines += [
        f"{name:<4} {quiet:>11.0f}  {attacked:>14.0f}  {kept:>7.1%}"
        for name, (quiet, attacked, kept) in rows.items()
    ]
    save_result(results_dir, "ablation_ycsb", "\n".join(lines))


def test_attacker_detectability(benchmark, results_dir):
    """The attack tone is audible orders of magnitude beyond its reach."""

    def run():
        sites = {
            "quiet site": AmbientNoise.quiet_site(),
            "average": AmbientNoise(),
            "busy harbor": AmbientNoise.harbor(),
        }
        return {
            name: site.detection_range_m(140.0, 650.0) for name, site in sites.items()
        }

    ranges = benchmark.pedantic(run, rounds=1, iterations=1)
    # Detectable from metres away everywhere; farther where quieter.
    assert all(reach > 1.0 for reach in ranges.values())
    assert ranges["quiet site"] > ranges["busy harbor"]
    # The attack itself only works inside ~0.25 m: defenders hear the
    # attacker at >10x the attack radius.
    assert min(ranges.values()) > 10 * 0.25
    lines = ["Ablation: hydrophone detection range of the 140 dB attack tone",
             "site          detection range (m)   attack radius (m)"]
    lines += [f"{name:<12}  {reach:>18.1f}   0.25" for name, reach in ranges.items()]
    save_result(results_dir, "ablation_detection", "\n".join(lines))
