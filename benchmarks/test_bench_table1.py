"""Table 1: FIO throughput and latency vs. speaker distance.

Regenerates the table (Scenario 2, 650 Hz) and asserts the cliff: no
response within 5 cm, write-dominant partial loss at 10-15 cm, recovery
by 20-25 cm.
"""

from __future__ import annotations

import pytest

from repro.experiments.paper_data import TABLE1_PAPER
from repro.experiments.table1 import run_table1

from conftest import save_result


def test_table1_range_profile(benchmark, results_dir):
    """The full Table 1 regeneration."""
    result = benchmark.pedantic(
        lambda: run_table1(fio_runtime_s=1.0, seed=42), rounds=1, iterations=1
    )
    points = {round(p.distance_m * 100): p for p in result.range_test.points}

    base = result.range_test.baseline
    assert base.read.throughput_mbps == pytest.approx(18.0, abs=0.4)
    assert base.write.throughput_mbps == pytest.approx(22.7, abs=0.4)

    # 1-5 cm: total loss, no response (paper "-").
    for cm in (1, 5):
        assert not points[cm].read.responded
        assert not points[cm].write.responded

    # 10 cm: writes nearly dead, reads partially degraded.
    assert points[10].write.throughput_mbps < 1.0
    assert 8.0 < points[10].read.throughput_mbps < 17.0

    # 15 cm: write-only loss.
    assert points[15].write.throughput_mbps < 8.0
    assert points[15].read.throughput_mbps > 16.0

    # 20-25 cm: recovered.
    for cm in (20, 25):
        assert points[cm].write.throughput_mbps > 19.0
        assert points[cm].read.throughput_mbps > 17.0

    benchmark.extra_info["paper_rows"] = {
        str(k): v for k, v in TABLE1_PAPER.items() if k is not None
    }
    save_result(results_dir, "table1", result.render())


def test_table1_latency_shape(benchmark):
    """Latency columns: "-" under stall, ~0.2 ms when healthy, inflated
    in the partial regime (paper: 4.0 ms write at 15 cm)."""
    result = benchmark.pedantic(
        lambda: run_table1(distances_m=(0.01, 0.15, 0.25), fio_runtime_s=1.0, seed=7),
        rounds=1,
        iterations=1,
    )
    points = {round(p.distance_m * 100): p for p in result.range_test.points}
    assert points[1].write.avg_latency_ms is None
    assert points[15].write.avg_latency_ms > 0.5
    assert points[25].write.avg_latency_ms == pytest.approx(0.2, abs=0.1)
    assert points[25].read.avg_latency_ms == pytest.approx(0.2, abs=0.1)
