PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke lint bench

test:       ## full test suite
	$(PYTHON) -m pytest -q

smoke:      ## quick CI gate: everything but the full campaign runs
	$(PYTHON) -m pytest -q -m "not slow"

lint:       ## ruff if installed, else pyflakes, else a syntax check
	$(PYTHON) tools/lint.py

bench:      ## paper-scale benchmarks (writes results/*.txt)
	$(PYTHON) -m pytest -q benchmarks
