PYTHON ?= python
export PYTHONPATH := src

.PHONY: help test smoke lint deepcheck bench bench-json bench-fleet bench-fleet-sim trace-smoke dashboard-smoke fleet-smoke doctest docs docs-check

help:       ## list targets with their one-line descriptions
	@awk -F':.*##' '/^[a-z-]+:.*##/ {printf "  %-12s %s\n", $$1, $$2}' $(MAKEFILE_LIST)

test:       ## full test suite
	$(PYTHON) -m pytest -q

smoke:      ## quick CI gate: everything but the full campaign runs
	$(PYTHON) -m pytest -q -m "not slow"

lint:       ## generic checker (ruff/pyflakes/syntax) + deepcheck
	$(PYTHON) tools/lint.py

deepcheck:  ## repo-specific invariant linter (docs/STATIC_ANALYSIS.md)
	$(PYTHON) tools/deepcheck
	$(PYTHON) tools/deepcheck --self-test

doctest:    ## run the docstring examples (units, SPL algebra, error taxonomy)
	$(PYTHON) -m pytest -q --doctest-modules src/repro/units.py src/repro/acoustics/spl.py src/repro/errors.py

docs:       ## regenerate docs/CLI.md from the argparse tree
	$(PYTHON) tools/gen_cli_docs.py

docs-check: ## CI gate: fail if docs/CLI.md is stale
	$(PYTHON) tools/gen_cli_docs.py --check

bench:      ## paper-scale benchmarks (writes results/*.txt)
	$(PYTHON) -m pytest -q benchmarks

bench-json: ## machine-readable perf trajectory (writes BENCH_PR10.json)
	$(PYTHON) tools/bench_json.py --out BENCH_PR10.json

bench-fleet: ## batched rack sweep vs scalar loop only (writes BENCH_FLEET.json)
	$(PYTHON) tools/bench_json.py --quick --only fleet --out BENCH_FLEET.json

bench-fleet-sim: ## event-loop fleet campaign gate only (writes BENCH_FLEETSIM.json)
	$(PYTHON) tools/bench_json.py --quick --only fleetsim --out BENCH_FLEETSIM.json

trace-smoke: ## tiny traced sweep + trace schema validation
	$(PYTHON) -m repro.cli figure2 --runtime 0.2 --seed 7 \
		--trace trace.json --metrics-out metrics.prom > /dev/null
	$(PYTHON) tools/validate_trace.py trace.json

dashboard-smoke: ## tiny attacked YCSB run + series/dashboard validation
	$(PYTHON) -m repro.cli ycsb --warmup 1 --attack 1.5 --recovery 1 \
		--records 150 --slo 'p99<25ms,avail>=99.9' \
		--series-out series.jsonl --dashboard-out dashboard.html > /dev/null
	$(PYTHON) tools/validate_trace.py series.jsonl dashboard.html

fleet-smoke: ## small sharded fleet campaign + series validation
	$(PYTHON) -m repro.cli fleet --racks 2 --towers 5 --duration 12 \
		--rate 40 --workers 2 --series-out fleet-series.jsonl > /dev/null
	$(PYTHON) tools/validate_trace.py fleet-series.jsonl
