"""Packaging for the Deep Note reproduction.

Classic setuptools packaging (no pyproject.toml) on purpose: the target
environments are air-gapped, and pip's PEP 517 build isolation tries to
download setuptools/wheel whenever a pyproject.toml is present.  With
this layout, ``pip install -e .`` works fully offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Deep Note reproduction: acoustic interference against HDD storage "
        "in underwater data centers (HotStorage '23)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["deepnote = repro.cli:main"]},
)
